"""Forced mid-run guard aborts of the specialized cycle loop.

``tests/core/test_codegen.py`` pins the happy path (full specialized
runs bit-identical to the generic engine) and the entry guard; this
suite forces each *mid-run* guard — the rare paths the generated loop
speculates away — and checks the deopt contract: the loop must abort to
the generic engine **between cycles with state intact**, so the whole
run (final statistics, complete ROB state and the pending-event
schedule) still equals a pure generic machine's, and the deopt counter
names the guard that fired.

* **flush storm** — M8's FLUSH fetch policy raises ``flush_wait`` on
  long-latency loads; MEM workloads make that a near-certainty. The
  flush guard has no injection: whenever the generic reference flushes
  at all, the specialized loop must have deopted on ``"flush"``.
* **far event** — an event scheduled beyond the timing wheel's horizon
  lands in ``_far_events``; the generated loop speculates that dict is
  empty. We inject a *stale-epoch* event (``epoch -99`` never matches
  ``_rob_epoch``, so writeback drops it — a semantic no-op) into BOTH
  machines: the reference processes (and discards) it identically while
  the candidate must deopt on ``"far"``.
* **warm restore** — restoring a warm snapshot into a live machine
  rewrites cache/predictor state wholesale and bumps ``_spec_epoch``.
  We wrap ``_writeback`` on BOTH machines to self-restore the
  machine's own snapshot mid-run (state-identical, epoch-bumping): the
  candidate must notice the epoch change and deopt on ``"warm"``.

Test modules cannot import each other (tests are not packages), so the
state helpers are duplicated from ``test_stage_registry_lockstep``.
"""

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.core.config import get_config
from repro.core.engine.options import EngineOptions
from repro.core.engine.state import EV_COMPLETE
from repro.core.engine.warm import _dump_warm_state
from repro.core.processor import Processor
from repro.trace.benchmarks import MEM_BENCHMARKS
from repro.trace.stream import trace_for

CODEGEN_ON = EngineOptions(codegen=True)
CODEGEN_OFF = EngineOptions(codegen=False)


def _traces_for(benches, length=1500):
    seen = {}
    traces = []
    for b in benches:
        inst = seen.get(b, 0)
        seen[b] = inst + 1
        traces.append(trace_for(b, length, instance=inst))
    return traces


def _pair(name, benches, mapping, target):
    """(codegen candidate, generic reference) over identical traces."""
    traces = _traces_for(benches)
    candidate = Processor(
        replace(get_config(name), engine_options=CODEGEN_ON),
        traces, mapping, target,
    )
    reference = Processor(
        replace(get_config(name), engine_options=CODEGEN_OFF),
        traces, mapping, target,
    )
    candidate.warm()
    reference.warm()
    return candidate, reference


def _machine_state(proc):
    """Complete engine-visible state: ROB arrays, rename maps, pipeline
    queues and the pending-event schedule (content and order)."""
    return (
        proc.cycle,
        proc.seq,
        proc.phys_free,
        proc._ready_count,
        proc._commitable,
        tuple(proc.committed),
        tuple(proc.icount),
        tuple(proc.inflight_loads),
        tuple(proc.fetch_idx),
        tuple(proc.junk_idx),
        tuple(proc.wrong_path),
        tuple(proc.flush_wait),
        tuple(proc.fetch_stall_until),
        tuple(proc.rob_head),
        tuple(proc.rob_tail),
        tuple(proc.rob_count),
        tuple(proc._rob_state),
        tuple(proc._rob_seq),
        tuple(proc._rob_epoch),
        tuple(proc._rob_flags),
        tuple(tuple(m) for m in proc.reg_map),
        tuple(pl.issued_total for pl in proc.pipelines),
        tuple(tuple(pl.iq_used) for pl in proc.pipelines),
        tuple(len(pl.buffer) for pl in proc.pipelines),
        tuple(sorted(
            (when, tuple(evs)) for when, evs in proc.events.items()
        )),
    )


def _final_state(proc):
    return (
        proc.cycle,
        proc.finished,
        tuple(proc.committed),
        tuple(pl.issued_total for pl in proc.pipelines),
        tuple(proc.stat_mispredicts),
        tuple(proc.stat_flushes),
        tuple(proc.stat_squashed),
        tuple(proc.stat_fetched),
        tuple(proc.stat_wrongpath_fetched),
        proc.stat_icache_stalls,
        proc.stat_btb_bubbles,
        proc.aggregate_ipc(),
    )


# ------------------------------------------------------------ flush storm


@given(
    benches=st.tuples(
        st.sampled_from(MEM_BENCHMARKS), st.sampled_from(MEM_BENCHMARKS)
    ),
    target=st.integers(min_value=200, max_value=500),
)
@settings(max_examples=12, deadline=None)
def test_flush_storm_deopts_and_matches_generic(benches, target):
    """M8 (FLUSH policy) on MEM workloads: whenever the run flushes at
    all, the specialized loop must have aborted on the flush guard —
    and the completed run must still be bit-identical to generic."""
    candidate, reference = _pair("M8", benches, (0, 0), target)
    candidate.run()
    reference.run()
    flushed = sum(reference.stat_flushes) > 0
    if flushed:
        assert candidate.codegen_deopts.get("flush", 0) >= 1
    else:
        assert candidate.codegen_deopts == {}
    assert _final_state(candidate) == _final_state(reference)
    assert _machine_state(candidate) == _machine_state(reference)


def test_flush_storm_actually_fires():
    """The canonical MEM pair must actually exercise the flush guard
    (guards against the property above passing vacuously)."""
    candidate, reference = _pair("M8", ("mcf", "twolf"), (0, 0), 500)
    candidate.run()
    reference.run()
    assert candidate.codegen_deopts.get("flush", 0) >= 1
    assert sum(reference.stat_flushes) > 0
    assert _final_state(candidate) == _final_state(reference)


# -------------------------------------------------------------- far event


@given(
    lead=st.integers(min_value=0, max_value=120),
    delay=st.integers(min_value=1, max_value=5000),
)
@settings(max_examples=12, deadline=None)
def test_far_event_deopts_and_matches_generic(lead, delay):
    """A pending far event — injected identically into both machines as
    a stale-epoch no-op after ``lead`` lockstep cycles — must deopt the
    specialized loop on the far guard without perturbing the run."""
    candidate, reference = _pair("2M4+2M2", ("gzip", "mcf"), (0, 2), 400)
    for _ in range(lead):
        candidate.step()
        reference.step()
    when = candidate.cycle + delay
    for proc in (candidate, reference):
        # Epoch -99 never matches _rob_epoch: writeback drops the event
        # on both machines, so the schedules stay identical.
        proc._far_events.setdefault(when, []).append((EV_COMPLETE, 0, 0, -99))
    candidate.run()
    reference.run()
    assert candidate.codegen_deopts == {"far": 1}
    assert _final_state(candidate) == _final_state(reference)
    assert _machine_state(candidate) == _machine_state(reference)


# ----------------------------------------------------------- warm restore


@given(restore_after=st.integers(min_value=1, max_value=250))
@settings(max_examples=12, deadline=None)
def test_warm_restore_deopts_and_matches_generic(restore_after):
    """A warm-snapshot restore into a live machine mid-run (emulated by
    a writeback wrapper that self-restores each machine's own snapshot,
    state-identical but ``_spec_epoch``-bumping) must deopt the
    specialized loop on the warm guard."""
    candidate, reference = _pair("2M4+2M2", ("gzip", "mcf"), (0, 2), 400)

    def arm(proc):
        snap = _dump_warm_state(proc.mem, proc.branch_unit)
        orig = proc._writeback
        state = {"fired": False}

        def writeback_and_restore():
            orig()
            if not state["fired"] and proc.cycle >= restore_after:
                state["fired"] = True
                proc._load_warm_snapshot(snap)

        proc._writeback = writeback_and_restore
        return state

    # Both machines restore at the same cycle (identical event
    # schedules drive identical writeback cycles), so they stay
    # bit-identical; only the candidate has an epoch guard to trip.
    cand_state = arm(candidate)
    ref_state = arm(reference)
    candidate.run()
    reference.run()
    assert cand_state["fired"] and ref_state["fired"]
    assert candidate.codegen_deopts == {"warm": 1}
    assert _final_state(candidate) == _final_state(reference)
    assert _machine_state(candidate) == _machine_state(reference)


# -------------------------------------------------- specialized-by-default


def test_hdsmt_configs_run_fully_specialized():
    """The hdSMT configurations (L1MCOUNT policy, no flushing) must run
    start to finish in the generated loop: an unexpected deopt here is a
    performance regression the counters make visible."""
    for name, benches, mapping in (
        ("2M4+2M2", ("gzip", "mcf"), (0, 2)),
        ("1M6+2M4+2M2", ("gzip", "gcc", "crafty", "eon", "gap", "bzip2"),
         (0, 0, 1, 2, 3, 4)),
    ):
        candidate, reference = _pair(name, benches, mapping, 400)
        candidate.run()
        reference.run()
        assert candidate.codegen_deopts == {}, name
        assert _final_state(candidate) == _final_state(reference)
