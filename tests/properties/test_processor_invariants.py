"""Property-based tests: end-of-run processor invariants.

Random workloads at random (valid) mappings are simulated briefly; the
machine must end every run with conserved resources and coherent ROB
accounting — the invariants that catch squash/rename bookkeeping bugs.
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import STANDARD_CONFIG_NAMES, get_config
from repro.core.mapping import enumerate_mappings
from repro.core.processor import Processor, S_FREE
from repro.trace.benchmarks import BENCHMARK_NAMES
from repro.trace.stream import trace_for


@st.composite
def scenario(draw):
    cfg_name = draw(st.sampled_from(STANDARD_CONFIG_NAMES))
    cfg = get_config(cfg_name)
    n = draw(st.integers(min_value=1, max_value=min(4, cfg.total_contexts)))
    benches = tuple(draw(st.sampled_from(BENCHMARK_NAMES)) for _ in range(n))
    options = enumerate_mappings(cfg, n, max_mappings=6, seed=draw(st.integers(0, 3)))
    mapping = draw(st.sampled_from(options))
    return cfg, benches, mapping


def _check_invariants(proc: Processor):
    # 1. Physical register conservation.
    held = 0
    for t in range(proc.num_threads):
        i = proc.rob_head[t]
        for _ in range(proc.rob_count[t]):
            if proc.rob_state[t][i] != S_FREE and proc.rob_entry[t][i][1] >= 0:
                held += 1
            i = (i + 1) % proc.rob_entries
    assert proc.phys_free + held == proc.params.rename_registers

    # 2. ROB ring consistency: count matches head/tail distance.
    for t in range(proc.num_threads):
        dist = (proc.rob_tail[t] - proc.rob_head[t]) % proc.rob_entries
        if proc.rob_count[t] == proc.rob_entries:
            assert dist == 0
        else:
            assert dist == proc.rob_count[t]

    # 3. Queue occupancy within capacity and non-negative.
    for pl in proc.pipelines:
        for fu in range(3):
            assert 0 <= pl.iq_used[fu] <= pl.iq_cap[fu]
        assert len(pl.buffer) <= pl.buffer_cap

    # 4. icount and inflight loads non-negative.
    for t in range(proc.num_threads):
        assert proc.icount[t] >= 0
        assert proc.inflight_loads[t] >= 0

    # 5. Committed never exceeds fetched.
    for t in range(proc.num_threads):
        assert proc.committed[t] <= proc.stat_fetched[t]


@given(scenario(), st.integers(min_value=200, max_value=900))
@settings(max_examples=25, deadline=None)
def test_invariants_hold_after_random_runs(scn, target):
    cfg, benches, mapping = scn
    traces = []
    seen = {}
    for b in benches:
        inst = seen.get(b, 0)
        seen[b] = inst + 1
        traces.append(trace_for(b, 2000, instance=inst))
    proc = Processor(cfg, traces, mapping, commit_target=target)
    proc.warm()
    proc.run()
    assert proc.finished, "runs at this scale must terminate"
    _check_invariants(proc)


@given(scenario())
@settings(max_examples=10, deadline=None)
def test_invariants_hold_mid_run(scn):
    """Invariants are not just terminal: check at several cut points."""
    cfg, benches, mapping = scn
    traces = [trace_for(b, 1500, instance=i) for i, b in enumerate(benches)]
    proc = Processor(cfg, traces, mapping, commit_target=10**9)
    proc.warm()
    for _ in range(5):
        for _ in range(150):
            proc.step()
        _check_invariants(proc)


@given(st.sampled_from(BENCHMARK_NAMES), st.integers(min_value=1, max_value=3))
@settings(max_examples=10, deadline=None)
def test_determinism(bench, nthreads):
    """Identical inputs give identical cycle counts and commits."""
    cfg = get_config("M8")
    traces = [trace_for(bench, 1500, instance=i) for i in range(nthreads)]
    runs = []
    for _ in range(2):
        proc = Processor(cfg, traces, (0,) * nthreads, commit_target=500)
        proc.warm()
        proc.run()
        runs.append((proc.cycle, tuple(proc.committed)))
    assert runs[0] == runs[1]
