"""Engine-variant salting of cache and request keys.

The codegen engine is bit-identical to the generic one by contract, but
identity layers (ResultCache keys, the service's single-flight request
keys) must still distinguish the two: a specialization bug must never be
maskable by serving one variant's cached result to the other. The salt
is added *only* for non-generic variants, so every pre-existing cache
entry and request key keeps its legacy bytes.
"""

from dataclasses import replace

import pytest

from repro.core.config import get_config
from repro.core.engine.options import EngineOptions, set_engine_options
from repro.runner import ResultCache, SimJob
from repro.service.protocol import request_key


@pytest.fixture(autouse=True)
def _restore_process_options(monkeypatch):
    monkeypatch.delenv("REPRO_CODEGEN", raising=False)
    set_engine_options(None)
    yield
    set_engine_options(None)


JOB = SimJob("M8", ("gzip", "twolf"), (0, 0), 500)


def test_generic_job_key_ignores_variant_plumbing():
    """Explicitly-generic options and no options at all must produce the
    same key: the salt only exists for non-generic variants, keeping
    legacy cache entries reachable."""
    default_key = ResultCache.job_key(JOB)
    set_engine_options(EngineOptions(codegen=False))
    assert ResultCache.job_key(JOB) == default_key


def test_codegen_job_key_differs_from_generic():
    generic = ResultCache.job_key(JOB)
    set_engine_options(EngineOptions(codegen=True))
    assert ResultCache.job_key(JOB) != generic
    # And flipping back restores the legacy key byte-for-byte.
    set_engine_options(None)
    assert ResultCache.job_key(JOB) == generic


def test_config_attached_options_salt_the_job_key():
    """A job carrying a config opted into codegen is salted even when
    the process default is generic (per-config options win)."""
    generic = ResultCache.job_key(JOB)
    cfg = replace(
        get_config("M8"), engine_options=EngineOptions(codegen=True)
    )
    tuned_job = SimJob(cfg, ("gzip", "twolf"), (0, 0), 500)
    plain_job = SimJob(get_config("M8"), ("gzip", "twolf"), (0, 0), 500)
    assert ResultCache.job_key(tuned_job) != ResultCache.job_key(plain_job)
    # engine_options is repr-excluded, so the *unsalted* fields of the
    # config-object job match the plain config-object job's exactly —
    # the key difference above is the salt and nothing else. The plain
    # config-object job in turn hashes the same fields as ever.
    assert plain_job.cache_key_fields() == tuned_job.cache_key_fields()
    assert ResultCache.job_key(plain_job) != generic  # repr(config) != "M8"


def test_request_key_salts_on_active_variant():
    generic = request_key("simulate", [JOB])
    set_engine_options(EngineOptions(codegen=True))
    salted = request_key("simulate", [JOB])
    assert salted != generic
    set_engine_options(EngineOptions(codegen=False))
    assert request_key("simulate", [JOB]) == generic


def test_cache_round_trip_is_variant_scoped(tmp_path):
    """A result cached under the generic variant is a miss for the
    codegen variant (and vice versa) — no cross-variant serving."""
    cache = ResultCache(tmp_path)
    result = JOB.execute()
    cache.put(JOB, result)
    assert cache.get(JOB) == result
    set_engine_options(EngineOptions(codegen=True))
    assert cache.get(JOB) is None
    cache.put(JOB, result)
    assert cache.get(JOB) == result
    set_engine_options(None)
    assert cache.get(JOB) == result  # legacy entry untouched
