"""Unit tests: the batched full-length continuation scheduler.

The contract: bundles *partition* the run plan exactly (every run in
exactly one bundle, round-robin, original relative order), a bundle's
resume count equals the number of full-length runs it replaces, and a
bundled run's result is bit-identical to the ``run_simulation`` call the
one-job-per-run scheduler used to dispatch.
"""

import pytest

from repro.core.simulation import run_simulation
from repro.experiments.performance import (
    _execute_plans,
    _plan_pair,
    clear_result_cache,
)
from repro.runner import BatchRunner
from repro.runner.cache import ResultCache
from repro.runner.continuation import (
    ContinuationJob,
    ContinuationRun,
    plan_bundles,
)
from repro.workloads.definitions import get_workload


def _run(i: int) -> ContinuationRun:
    """Distinct dummy runs (never executed by the partition tests)."""
    return ContinuationRun("M8", ("gzip",), (0,), 100 + i)


# ----------------------------------------------------------- plan_bundles


@pytest.mark.parametrize("n_runs,bundle_count", [
    (0, 4), (1, 4), (3, 4), (4, 4), (5, 4), (12, 4), (7, 1), (7, 3), (9, 16),
])
def test_bundles_partition_the_plan_exactly(n_runs, bundle_count):
    runs = [_run(i) for i in range(n_runs)]
    jobs = plan_bundles(runs, bundle_count)
    # Never more bundles than runs or than requested; none empty.
    assert len(jobs) == min(n_runs, bundle_count)
    assert all(job.runs for job in jobs)
    # Exact partition: every run appears exactly once, round-robin —
    # bundle b holds runs[b::n] in original order.
    n = len(jobs)
    for b, job in enumerate(jobs):
        assert list(job.runs) == runs[b::n]
    flat = sorted((r for job in jobs for r in job.runs),
                  key=lambda r: r.commit_target)
    assert flat == runs
    # Resume counts cover the plan exactly.
    assert sum(job.resume_count for job in jobs) == n_runs


def test_bundle_count_must_be_positive():
    with pytest.raises(ValueError):
        plan_bundles([_run(0)], 0)


# ------------------------------------------------- execution bit-identity


def test_bundled_runs_equal_run_simulation(tiny_scale):
    """A bundle's results must be bit-identical, run for run, to the
    individual ``run_simulation`` calls it replaces."""
    runs = (
        ContinuationRun("M8", ("gzip", "twolf"), (0, 0),
                        tiny_scale.commit_target),
        ContinuationRun("2M4+2M2", ("gzip", "twolf"), (0, 2),
                        tiny_scale.commit_target),
    )
    job = ContinuationJob(runs=runs)
    results = job.execute()
    assert len(results) == job.resume_count == 2
    for run, result in zip(runs, results):
        ref = run_simulation(run.config, run.benchmarks, run.mapping,
                             run.commit_target)
        assert result == ref


def test_result_cache_is_per_run_and_bundle_independent(tmp_path, tiny_scale):
    """Bundle runs cache under their SimJob identities: a re-bundled (or
    per-job) sweep hits the same entries, independent of composition."""
    run_a = ContinuationRun("M8", ("gzip",), (0,), tiny_scale.commit_target)
    run_b = ContinuationRun("M8", ("twolf",), (0,), tiny_scale.commit_target)
    cache = ResultCache(tmp_path)
    first = ContinuationJob(runs=(run_a, run_b)).execute(cache)
    assert cache.misses == 2 and cache.hits == 0
    # Different bundling, same runs: both served from cache.
    again = tuple(
        ContinuationJob(runs=(r,)).execute(cache)[0] for r in (run_b, run_a)
    )
    assert cache.hits == 2
    assert again == (first[1], first[0])
    # The per-job scheduler's SimJob identity hits the same entry.
    assert run_a.as_sim_job().execute(cache) == first[0]
    assert cache.hits == 3


# ------------------------------------------ scheduler integration (sweep)


class RecordingRunner(BatchRunner):
    """Executes every batch inline but records it, while *reporting* a
    multi-worker width so the scheduler sizes bundles as the pool would."""

    def __init__(self, reported_workers: int):
        super().__init__(workers=1, trace_store=False)
        self.workers = reported_workers
        self.batches = []

    def run(self, jobs):
        jobs = list(jobs)
        self.batches.append(jobs)
        return [job.execute() for job in jobs]


def test_sweep_resume_counts_match_exact_mode_run_counts(tiny_scale):
    """Exact-mode sweep: the bundles must execute exactly the runs the
    per-job scheduler dispatched — one screen per candidate mapping and
    one full run per single-mapping pair in phase 1 (packed into at most
    worker-count bundles), then one full-length run per distinct
    BEST/HEUR/WORST mapping of every screened pair in phase 2.
    """
    clear_result_cache()
    configs = ["M8", "2M4+2M2"]
    workloads = ["2W1", "2W7"]
    runner = RecordingRunner(reported_workers=3)
    plans = [
        _plan_pair(cn, get_workload(wn), tiny_scale, screening=False)
        for cn in configs for wn in workloads
    ]
    _execute_plans(plans, tiny_scale, runner, bundle_count=None)
    assert len(runner.batches) == 2  # screens (+singles), then continuations

    singles = [p for p in plans if p.single_map is not None]
    screened = [p for p in plans if p.single_map is None]
    assert singles and screened  # the scenario covers both paths

    # Phase 1: exact-mode screens ride in the same worker-count-sized
    # bundles as the single-mapping pairs' full runs — at most
    # ``workers`` jobs total where the per-job scheduler dispatched
    # one SimJob per candidate mapping.
    phase1_bundles = [j for j in runner.batches[0]
                      if isinstance(j, ContinuationJob)]
    assert phase1_bundles == list(runner.batches[0])  # no per-run jobs left
    assert len(phase1_bundles) <= runner.workers
    phase1_runs = [r for j in phase1_bundles for r in j.runs]
    single_runs = [r for r in phase1_runs
                   if r.commit_target == tiny_scale.commit_target]
    screen_runs = [r for r in phase1_runs
                   if r.commit_target == tiny_scale.screen_target]
    assert len(single_runs) + len(screen_runs) == len(phase1_runs)
    assert len(single_runs) == len(singles)
    assert len(screen_runs) == sum(len(p.candidates) for p in screened)
    # Every candidate screened exactly once, as the per-job path did.
    assert {(r.config, r.benchmarks, r.mapping) for r in screen_runs} == {
        (p.config_name, p.workload.benchmarks, m)
        for p in screened for m in p.candidates
    }

    phase2 = runner.batches[1]
    assert all(isinstance(j, ContinuationJob) for j in phase2)
    assert len(phase2) <= runner.workers
    # Exact-mode run count: every distinct mapping among BEST/HEUR/WORST
    # per screened pair (the set the per-run scheduler would dispatch).
    expected = sum(
        len(dict.fromkeys([p.heur_map, p.best_map, p.worst_map]))
        for p in screened
    )
    assert sum(j.resume_count for j in phase2) == expected
    # The bundled runs are exactly the planned (pair, mapping) requests.
    planned = {
        (p.config_name, p.workload.benchmarks, m)
        for p in screened
        for m in dict.fromkeys([p.heur_map, p.best_map, p.worst_map])
    }
    bundled = {
        (run.config, run.benchmarks, run.mapping)
        for j in phase2 for run in j.runs
    }
    assert bundled == planned
    # Every screened pair ended with all three full-length results.
    for p in screened:
        for m in (p.heur_map, p.best_map, p.worst_map):
            assert m in p.full_results
    clear_result_cache()


def test_bundle_count_knob_caps_phase2_jobs(tiny_scale):
    clear_result_cache()
    runner = RecordingRunner(reported_workers=8)
    plans = [_plan_pair("2M4+2M2", get_workload("2W7"), tiny_scale,
                        screening=False)]
    _execute_plans(plans, tiny_scale, runner, bundle_count=1)
    phase2 = runner.batches[1]
    assert len(phase2) == 1 and isinstance(phase2[0], ContinuationJob)
    clear_result_cache()
