"""DistributedExecutor + Worker integration, in-process.

These tests service the queue with controllable threads built on the
real :class:`~repro.runner.distributed.worker.Worker` claim/execute
machinery (but not ``Worker.run``, whose process setup — ``gc.disable``
etc. — is for dedicated worker processes, not a shared test process).
Real multi-process fleets, chaos included, live in
``test_distributed_chaos.py``; here the point is deterministic coverage
of every front-end path: clean distribution, grace-window degradation,
lease reclamation, speculative re-dispatch, failure-budget exhaustion
and dark-fleet draining.
"""

import threading
import time

import pytest

from repro.runner import BatchRunner, JobQueue, RetryPolicy, RunReport
from repro.runner.distributed import DistributedExecutor, Worker
from repro.runner.distributed.queue import base_task_id

GENEROUS = 60.0


@pytest.fixture(scope="module")
def reference_results(sim_jobs):
    with BatchRunner(workers=1) as runner:
        return runner.run(sim_jobs)


class Servicer(threading.Thread):
    """An in-process queue servicer with fault dials.

    ``abandon_first``: claim the first (non-speculative) task seen, let
    the lease die unrenewed, and skip it once (a worker that vanished
    mid-task).  ``hold_first``: claim it on a long lease and never
    finish (a straggler) — speculation's prey.
    """

    def __init__(self, queue_dir, worker_id="svc", lease_ttl=GENEROUS,
                 abandon_first=False, hold_first=False):
        super().__init__(daemon=True)
        self.worker = Worker(queue_dir, worker_id=worker_id,
                             lease_ttl=lease_ttl)
        self.queue = self.worker.queue
        self.worker_id = worker_id
        self.abandon_first = abandon_first
        self.hold_first = hold_first
        self.stop = threading.Event()
        self.executed = []

    def run(self):
        sabotaged = None
        while not self.stop.is_set():
            self.queue.heartbeat_worker(self.worker_id)
            claimed = self.worker._claim_next()
            if claimed is None:
                time.sleep(0.01)
                continue
            task_id, job = claimed
            if sabotaged is None and "~" not in task_id:
                if self.abandon_first:
                    sabotaged = task_id
                    # Vanish: backdate the lease so it is already
                    # expired, then sit out the reclaim race so the
                    # front end must win it.
                    self.queue.renew(task_id, self.worker_id, ttl=-1.0)
                    deadline = time.monotonic() + 5.0
                    while (self.queue.read_lease(task_id) is not None
                           and time.monotonic() < deadline):
                        time.sleep(0.01)
                    continue
                if self.hold_first:
                    sabotaged = task_id
                    continue  # lease held (long ttl), never finishes
            self.worker._execute_claimed(task_id, job)
            self.executed.append(task_id)

    def join_stopped(self):
        self.stop.set()
        self.join(timeout=30)
        assert not self.is_alive()


# -- BatchRunner routing ----------------------------------------------------


def test_distributed_batch_matches_local(tmp_path, sim_jobs,
                                         reference_results):
    svc = Servicer(tmp_path / "q")
    svc.start()
    try:
        with BatchRunner(workers=2, queue_dir=tmp_path / "q") as runner:
            results = runner.run(sim_jobs)
            report = runner.report
    finally:
        svc.join_stopped()
    assert results == reference_results
    assert len(svc.executed) == len(sim_jobs)
    assert report.enqueued == len(sim_jobs)
    assert report.jobs == len(sim_jobs)
    assert report.attempts == len(sim_jobs)
    assert report.local_fallbacks == 0
    assert report.failures == 0
    # The batch was garbage-collected: nothing left on the queue.
    q = JobQueue(tmp_path / "q")
    assert q.task_ids() == [] and q.pending() == []


def test_small_batches_stay_local(tmp_path, sim_jobs, reference_results):
    """Below the parallelism floor the queue is bypassed entirely — no
    enqueue, no grace-window wait."""
    with BatchRunner(workers=2, queue_dir=tmp_path / "q") as runner:
        results = runner.run(sim_jobs[:2])
        assert runner.report.enqueued == 0
        assert runner.report.local_fallbacks == 0
    assert results == list(reference_results[:2])


def test_no_worker_degrades_within_grace(tmp_path, sim_jobs,
                                         reference_results, monkeypatch):
    monkeypatch.setenv("REPRO_DIST_GRACE", "0.3")
    t0 = time.monotonic()
    with BatchRunner(workers=2, queue_dir=tmp_path / "q") as runner:
        results = runner.run(sim_jobs)
        report = runner.report
    assert results == reference_results
    assert report.local_fallbacks == 1
    assert report.enqueued == len(sim_jobs)
    assert report.jobs == len(sim_jobs)  # counted once, by the fallback
    assert time.monotonic() - t0 < 30.0
    q = JobQueue(tmp_path / "q")
    assert q.task_ids() == []  # withdrawn batch left nothing behind


def test_queue_config_published_for_workers(tmp_path):
    with BatchRunner(workers=2, queue_dir=tmp_path / "q",
                     cache_dir=tmp_path / "cache") as runner:
        config = JobQueue(tmp_path / "q").read_config()
        assert config["cache_dir"] == str(tmp_path / "cache")
        assert config["store_dir"] == runner.store_dir


# -- executor recovery paths (white-box) ------------------------------------


def test_expired_lease_is_reclaimed_and_redispatched(tmp_path, sim_jobs,
                                                     reference_results):
    q = JobQueue(tmp_path / "q")
    report = RunReport()
    executor = DistributedExecutor(
        q, report=report, grace=GENEROUS, lease_ttl=GENEROUS,
        stall_seconds=GENEROUS,
    )
    svc = Servicer(tmp_path / "q", abandon_first=True)
    svc.start()
    try:
        results = executor.run(list(sim_jobs), fallback=_must_not_run)
    finally:
        svc.join_stopped()
    assert results == reference_results
    assert report.lease_reclaims >= 1
    assert report.failures == 0
    assert report.local_fallbacks == 0


def test_straggler_gets_speculative_twin(tmp_path, sim_jobs,
                                         reference_results):
    q = JobQueue(tmp_path / "q")
    report = RunReport()
    executor = DistributedExecutor(
        q, report=report, grace=GENEROUS, lease_ttl=GENEROUS,
        spec_quantile=0.25, spec_factor=1.0, spec_min_seconds=0.2,
        stall_seconds=GENEROUS,
    )
    svc = Servicer(tmp_path / "q", hold_first=True)
    svc.start()
    try:
        results = executor.run(list(sim_jobs), fallback=_must_not_run)
    finally:
        svc.join_stopped()
    assert results == reference_results
    assert report.speculations >= 1
    assert report.lease_reclaims == 0  # the straggler's lease never expired
    assert report.failures == 0
    assert any("~s" in tid for tid in svc.executed)  # the twin ran


def test_exhausted_failure_budget_raises_joberror(tmp_path, sim_jobs):
    from repro.runner import JobError

    q = JobQueue(tmp_path / "q")
    report = RunReport()
    policy = RetryPolicy(max_attempts=2)
    executor = DistributedExecutor(
        q, policy=policy, report=report, grace=GENEROUS,
        lease_ttl=GENEROUS, stall_seconds=GENEROUS,
    )

    stop = threading.Event()

    def poison():
        # A stand-in for workers that keep failing one task: burn its
        # whole attempt budget in failure ordinals.
        while not stop.is_set():
            q.heartbeat_worker("poisoner")
            tids = q.task_ids()
            if tids:
                victim = base_task_id(tids[0])
                while q.failure_count(victim) < policy.max_attempts:
                    q.record_failure(victim, "InjectedFault: chaos")
                return
            time.sleep(0.01)

    thread = threading.Thread(target=poison, daemon=True)
    thread.start()
    try:
        with pytest.raises(JobError) as err:
            executor.run(list(sim_jobs), fallback=_must_not_run)
    finally:
        stop.set()
        thread.join(timeout=10)
    assert "2 distributed attempt(s)" in str(err.value)
    assert "InjectedFault: chaos" in str(err.value)
    assert report.failures == 1
    assert q.task_ids() == []  # the doomed batch was cleaned up


def test_dark_fleet_drains_to_local_fallback(tmp_path, sim_jobs,
                                             reference_results):
    q = JobQueue(tmp_path / "q")
    report = RunReport()
    executor = DistributedExecutor(
        q, report=report, grace=0.4, lease_ttl=0.4,
        stall_seconds=GENEROUS,
    )
    # One heartbeat, then silence: the fleet registered and died without
    # ever claiming a task.
    q.heartbeat_worker("ghost")

    drained = []

    def fallback(jobs):
        drained.extend(jobs)
        return [j.execute(None) for j in jobs]

    results = executor.run(list(sim_jobs), fallback=fallback)
    assert results == reference_results
    assert len(drained) == len(sim_jobs)
    assert report.local_fallbacks == 1
    assert report.jobs == 0  # handed back before any distributed credit


def test_worker_claim_skips_resulted_and_poisoned(tmp_path, sim_jobs):
    q = JobQueue(tmp_path / "q")
    q.write_config(None, None)
    jobs = list(sim_jobs[:3])
    for i, job in enumerate(jobs):
        q.enqueue(f"b1-j{i:04d}", job)
    q.publish("b1-j0000", {"result": "done"})
    policy = RetryPolicy(max_attempts=2)
    for _ in range(policy.max_attempts):
        q.record_failure("b1-j0001", "boom")
    worker = Worker(tmp_path / "q", worker_id="w1", policy=policy)
    claimed = worker._claim_next()
    assert claimed is not None and claimed[0] == "b1-j0002"
    worker.queue.release("b1-j0002", "w1")


def _must_not_run(jobs):
    raise AssertionError("local fallback must not run in this scenario")
