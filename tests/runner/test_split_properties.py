"""Property suite for the work-stealing split: ``split_bundle`` must
partition a bundle *exactly* (every run in exactly one part, order
stable, near-even sizes) for arbitrary bundle shapes and part counts,
``join_split_results`` must invert it, and a split execution must be
byte-identical to the unsplit bundle — the invariants the distributed
steal and the local re-split rescue both lean on."""

from hypothesis import given, strategies as st

from repro.runner.continuation import (
    ContinuationJob,
    ContinuationRun,
    join_split_results,
    plan_bundles,
    split_bundle,
    unbundle_results,
)


def _runs(n):
    """n cheap, pairwise-distinct runs (the seed is the identity)."""
    return tuple(
        ContinuationRun(
            config="M8",
            benchmarks=("gzip", "twolf"),
            mapping=(0, 0),
            commit_target=200,
            seed=i,
        )
        for i in range(n)
    )


@given(n=st.integers(0, 40), parts=st.integers(1, 50))
def test_split_partitions_exactly(n, parts):
    job = ContinuationJob(runs=_runs(n))
    out = split_bundle(job, parts)
    # Exact partition, order stable: concatenating the parts' runs in
    # part order reproduces the bundle's run tuple (each run once).
    joined = tuple(r for part in out for r in part.runs)
    assert joined == job.runs
    if n == 0:
        assert out == []
        return
    assert len(out) == min(n, parts)
    sizes = [len(part.runs) for part in out]
    assert all(size >= 1 for size in sizes)
    assert max(sizes) - min(sizes) <= 1  # near-even cut


@given(n=st.integers(1, 40))
def test_single_part_split_is_the_bundle_itself(n):
    job = ContinuationJob(runs=_runs(n))
    assert split_bundle(job, 1) == [job]


@given(
    parts=st.lists(
        st.lists(st.integers(), max_size=5).map(tuple), max_size=8
    )
)
def test_join_concatenates_in_part_order(parts):
    assert join_split_results(parts) == tuple(
        x for part in parts for x in part
    )


@given(n=st.integers(1, 30), parts=st.integers(1, 8), data=st.data())
def test_steal_cut_plus_split_tail_partitions(n, parts, data):
    """The distributed steal's exact shape: a done-prefix cut at any
    boundary plus a split of the tail still covers every run exactly
    once, in order."""
    runs = _runs(n)
    cut = data.draw(st.integers(0, n), label="cut")
    tail = runs[cut:]
    stolen = (
        split_bundle(ContinuationJob(runs=tail), parts) if tail else []
    )
    covered = runs[:cut] + tuple(
        r for part in stolen for r in part.runs
    )
    assert covered == runs


@given(n=st.integers(0, 30), bundles=st.integers(1, 10))
def test_plan_unbundle_round_trip(n, bundles):
    runs = _runs(n)
    jobs = plan_bundles(runs, bundles)
    fake = [tuple(run.seed for run in job.runs) for job in jobs]
    assert unbundle_results(fake, n) == [run.seed for run in runs]


def test_split_execution_byte_identical():
    """Real engine check at every interesting part count: executing the
    parts and joining equals the unsplit bundle's result tuple."""
    job = ContinuationJob(runs=_runs(3))
    whole = job.execute()
    for parts in (1, 2, 3, 7):
        split = split_bundle(job, parts)
        assert join_split_results([p.execute() for p in split]) == whole
