"""Successive-halving screens: planner mechanics and job exactness.

The load-bearing properties:

* exact mode (``rounds=1``) reproduces the per-candidate screen's scores
  and tie-breaks bit-exactly;
* checkpointed continuation is indistinguishable from fresh longer runs —
  survivors' final-round scores equal what exact screening would produce,
  and folded full-length results equal :func:`run_simulation`'s.
"""

import pytest

from repro.core.simulation import run_simulation
from repro.runner.screening import HalvingScreen, ScreenJob

CANDS = ((0, 2), (0, 1), (0, 0), (2, 0), (1, 0), (0, 3))


# ------------------------------------------------------------ HalvingScreen


def test_exact_plan_is_single_full_round():
    screen = HalvingScreen(CANDS, 1000, rounds=1)
    assert screen.targets == [1000]
    assert screen.is_final_round
    screen.feed({m: float(i) for i, m in enumerate(CANDS)})
    assert screen.finished
    assert screen.best() == CANDS[-1]
    assert screen.worst() == CANDS[0]


def test_ladder_targets_double_up_to_final():
    screen = HalvingScreen(CANDS * 4, 1600, rounds=4, min_target=100)
    assert screen.targets == [200, 400, 800, 1600]
    screen2 = HalvingScreen(CANDS * 4, 800, rounds=4, min_target=150)
    assert screen2.targets[-1] == 800
    assert screen2.targets[0] >= 150
    assert screen2.targets == sorted(set(screen2.targets))


def test_pruning_keeps_both_tails():
    cands = tuple((0, i) for i in range(12))
    screen = HalvingScreen(cands, 800, rounds=3, keep=0.5, min_survivors=3)
    scores = {m: float(m[1]) for m in cands}  # rank = index
    screen.feed(scores)
    assert len(screen.survivors) == 6
    # top 3 and bottom 3 of the ranking survive; the middle is gone.
    assert set(screen.survivors) == {(0, 11), (0, 10), (0, 9),
                                     (0, 2), (0, 1), (0, 0)}


def test_top_biased_pruning_always_keeps_a_bottom_survivor():
    """However top-biased the split, the argmin lineage must reach the
    final round: every pruning step keeps >= 1 bottom-tail candidate
    (k=3 with top_fraction=0.67 would otherwise keep top-only)."""
    cands = tuple((0, i) for i in range(36))
    screen = HalvingScreen(cands, 1500, rounds=4, keep=0.35,
                           top_fraction=0.67, min_survivors=3)
    scores = {m: float(m[1]) for m in cands}  # rank == index, stable
    while not screen.finished:
        # The current overall-worst candidate must still be alive.
        assert min(screen.survivors, key=lambda m: scores[m]) == (0, 0)
        screen.feed({m: scores[m] for m in screen.survivors})
    assert screen.worst() == (0, 0)
    assert screen.best() == (0, 35)


def test_tiny_candidate_sets_skip_straight_to_final():
    screen = HalvingScreen(CANDS[:2], 900, rounds=4, min_survivors=3)
    assert screen.is_final_round
    assert screen.round_target == 900


def test_tie_break_matches_seed_max_min_over_tuples():
    """Seed drivers used max()/min() over (ipc, mapping) tuples."""
    screen = HalvingScreen(CANDS, 500, rounds=1)
    tied = {m: 1.0 for m in CANDS}
    screen.feed(tied)
    assert screen.best() == max(CANDS)
    assert screen.worst() == min(CANDS)


def test_feed_requires_all_survivor_scores():
    screen = HalvingScreen(CANDS, 500, rounds=1)
    with pytest.raises(ValueError):
        screen.feed({CANDS[0]: 1.0})


# ----------------------------------------------------------------- ScreenJob

WORKLOAD = ("gzip", "mcf")
PAIR_CANDS = ((0, 2), (0, 1), (0, 0), (2, 0))


def test_exact_screen_job_equals_per_candidate_simulations():
    job = ScreenJob("2M4+2M2", WORKLOAD, PAIR_CANDS, 400)
    scores = job.execute().scores()
    for m in PAIR_CANDS:
        assert scores[m] == run_simulation("2M4+2M2", WORKLOAD, m, 400).ipc
    assert job.execute().screens_run == len(PAIR_CANDS)


def test_checkpointed_final_scores_equal_fresh_full_window_runs():
    """Survivors' staged (continued) runs must score exactly like fresh
    runs at the final window — the checkpoint-resume identity."""
    job = ScreenJob("2M4+2M2", WORKLOAD, PAIR_CANDS, 800, rounds=3,
                    min_target=100, min_survivors=2)
    result = job.execute()
    assert result.screens_run > len(PAIR_CANDS)  # multiple rounds ran
    for m, ipc in result.final_scores:
        assert ipc == run_simulation("2M4+2M2", WORKLOAD, m, 800).ipc


def test_folded_full_results_equal_run_simulation():
    job = ScreenJob("2M4+2M2", WORKLOAD, PAIR_CANDS, 400, rounds=2,
                    min_target=100, min_survivors=2,
                    trace_length=4096, full_target=1200,
                    extra_fulls=((0, 1),))
    result = job.execute()
    mappings = [m for m, _ in result.full_results]
    assert (0, 1) in mappings  # the extra (heuristic-style) full ran
    for m, folded in result.full_results:
        fresh = run_simulation("2M4+2M2", WORKLOAD, m, 1200, trace_length=4096)
        assert folded == fresh  # full SimResult equality, stats included


def test_screen_job_trace_triples_match_simulation_resolution():
    job = ScreenJob("2M4+2M2", ("twolf", "twolf"), PAIR_CANDS, 400, seed=1)
    assert job.trace_triples() == [
        ("twolf", 4096, 0 + (1 << 16)),
        ("twolf", 4096, 1 + (1 << 16)),
    ]
