"""BatchRunner: parallel determinism, result caching, experiment wiring."""

import json


from repro.core.simulation import run_simulation
from repro.experiments.performance import (
    clear_result_cache,
    fig4_table,
    fig5_table,
    run_performance_experiment,
)
from repro.runner import BatchRunner, ResultCache, SimJob
from repro.runner.batch import resolve_workers


def test_simjob_execute_matches_run_simulation(sim_jobs):
    job = sim_jobs[0]
    assert job.execute() == run_simulation(
        job.config, job.benchmarks, job.mapping, job.commit_target
    )


def test_parallel_results_equal_sequential(sim_jobs):
    """The core determinism contract: worker count never changes results."""
    with BatchRunner(workers=1) as seq, BatchRunner(workers=2) as par:
        sequential = seq.run(sim_jobs)
        parallel = par.run(sim_jobs)
    assert parallel == sequential
    assert [r.mapping for r in sequential] == [j.mapping for j in sim_jobs]


def test_runner_preserves_job_order(sim_jobs):
    with BatchRunner(workers=2) as runner:
        results = runner.run(sim_jobs)
    for job, res in zip(sim_jobs, results):
        assert res.mapping == job.mapping
        assert res.benchmarks == job.benchmarks


def test_result_cache_round_trip(tmp_path, sim_jobs):
    cache = ResultCache(tmp_path)
    job = sim_jobs[1]
    assert cache.get(job) is None
    result = job.execute()
    cache.put(job, result)
    assert cache.get(job) == result
    assert len(cache) == 1


def test_result_cache_distinguishes_jobs(tmp_path, sim_jobs):
    cache = ResultCache(tmp_path)
    a, b = sim_jobs[1], sim_jobs[2]  # same workload, different mapping
    assert ResultCache.job_key(a) != ResultCache.job_key(b)
    cache.put(a, a.execute())
    assert cache.get(b) is None


def test_disk_cache_hits_skip_simulation(tmp_path, monkeypatch, sim_jobs):
    with BatchRunner(workers=1, cache_dir=tmp_path) as runner:
        first = runner.run(sim_jobs[:2])
    assert len(list(tmp_path.glob("??/*.json"))) == 2  # sharded layout

    # Second runner over the same directory must serve from disk: poison
    # run_simulation (the only compute path under SimJob.execute) to
    # prove no simulation happens.
    import repro.runner.jobs as jobs_mod

    def boom(*a, **k):  # pragma: no cover - would only run on cache miss
        raise AssertionError("cache miss: simulation re-ran")

    monkeypatch.setattr(jobs_mod, "run_simulation", boom)
    with BatchRunner(workers=1, cache_dir=tmp_path) as runner:
        again = runner.run(sim_jobs[:2])
    assert again == first


def test_cache_payload_is_json(tmp_path, sim_jobs):
    cache = ResultCache(tmp_path)
    job = sim_jobs[0]
    cache.put(job, job.execute())
    path = next(tmp_path.glob("??/*.json"))
    payload = json.loads(path.read_text())
    assert payload["config_name"] == "M8"
    assert payload["cycles"] > 0


def test_seed_namespaces_trace_draw(sim_jobs):
    """seed=N draws an alternative trace window: reproducible, distinct
    from seed 0, and distinguished in the cache key."""
    base = sim_jobs[0]
    seeded = SimJob(base.config, base.benchmarks, base.mapping,
                    base.commit_target, seed=1)
    r0, r1, r1b = base.execute(), seeded.execute(), seeded.execute()
    assert r1 == r1b  # deterministic per seed
    assert r0 != r1  # different draw than the paper's fixed traces
    from repro.runner.cache import ResultCache
    assert ResultCache.job_key(base) != ResultCache.job_key(seeded)


def test_explicit_trace_store_is_populated_and_results_identical(tmp_path, sim_jobs):
    """Parallel runs through a shared packed-trace store must pre-pack
    every needed trace and produce results identical to the storeless
    sequential path."""
    with BatchRunner(workers=1, trace_store=False) as plain:
        reference = plain.run(sim_jobs)
    store_dir = tmp_path / "store"
    with BatchRunner(workers=2, trace_store=store_dir) as runner:
        results = runner.run(sim_jobs)
    assert results == reference
    assert list(store_dir.glob("*.trace"))  # parent pre-packed traces
    assert list(store_dir.glob("*.warm"))  # and warm snapshots


def test_private_store_cleaned_up_on_close(sim_jobs):
    runner = BatchRunner(workers=2)
    store_dir = runner.store_dir
    assert store_dir is not None
    runner.run(sim_jobs)
    runner.close()
    import os

    assert runner.store_dir is None
    assert not os.path.exists(store_dir)


def test_resolve_workers(monkeypatch):
    assert resolve_workers(3) == 3
    assert resolve_workers(0) == 1
    monkeypatch.setenv("REPRO_WORKERS", "5")
    assert resolve_workers() == 5
    monkeypatch.delenv("REPRO_WORKERS")
    assert resolve_workers() >= 1


def test_performance_experiment_identical_across_worker_counts(tiny_scale):
    """Acceptance: run_performance_experiment through BatchRunner yields
    identical figure tables whatever the worker count."""
    configs = ["M8", "2M4+2M2"]
    workloads = ["2W4", "4W6"]

    clear_result_cache()
    seq = run_performance_experiment(configs, workloads, tiny_scale, workers=1)
    clear_result_cache()
    par = run_performance_experiment(configs, workloads, tiny_scale, workers=2)

    for cn in configs:
        assert seq[cn].keys() == par[cn].keys()
        for wn in seq[cn]:
            a, b = seq[cn][wn], par[cn][wn]
            assert (a.best, a.heur, a.worst) == (b.best, b.heur, b.worst)
            assert a.mappings_screened == b.mappings_screened
    for cls in ("ILP", "MEM", "MIX"):
        assert fig4_table(seq, cls) == fig4_table(par, cls)
        assert fig5_table(seq, cls) == fig5_table(par, cls)
    clear_result_cache()


def test_ablation_through_runner_matches_direct(tiny_scale):
    """Ablation drivers batched through BatchRunner equal direct calls."""
    from repro.experiments.ablations import ablation_register_latency

    direct = ablation_register_latency(
        workload_name="2W4", latencies=(1, 2), scale=tiny_scale, workers=1
    )
    parallel = ablation_register_latency(
        workload_name="2W4", latencies=(1, 2), scale=tiny_scale, workers=2
    )
    assert direct == parallel
    assert set(direct) == {1, 2}
