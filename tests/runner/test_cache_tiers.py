"""The multi-tier ResultCache: memory-tier semantics (hit, promote,
write-through, LRU eviction, detachment), the pluggable CacheBackend
protocol, stats/prune GC, and the per-job key memo."""

import json
import os
import time

import pytest

from repro.runner import ResultCache
from repro.runner.cache import CacheEntry, FilesystemBackend


def _key_path(tmp_path, job):
    key = ResultCache.job_key(job)
    return tmp_path / key[:2] / f"{key}.json"


# -- the memory tier -------------------------------------------------------


def test_mem_tier_off_by_default(tmp_path, sim_job, monkeypatch):
    monkeypatch.delenv("REPRO_MEM_CACHE_MB", raising=False)
    cache = ResultCache(tmp_path)
    assert not cache.mem_enabled
    cache.put(sim_job, sim_job.execute())
    assert cache.get(sim_job) is not None
    assert cache.mem_hits == 0 and cache.disk_hits == 1
    assert len(cache._mem) == 0


def test_mem_tier_env_budget(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_MEM_CACHE_MB", "2")
    cache = ResultCache(tmp_path)
    assert cache.mem_budget_bytes == 2 * 1024 * 1024
    monkeypatch.setenv("REPRO_MEM_CACHE_MB", "not-a-number")
    assert not ResultCache(tmp_path).mem_enabled


def test_put_writes_through_and_get_hits_memory(tmp_path, sim_job):
    cache = ResultCache(tmp_path, mem_cache_mb=4)
    result = sim_job.execute()
    cache.put(sim_job, result)
    assert _key_path(tmp_path, sim_job).exists()  # tier 1 always written
    # Remove the disk entry: a hit now proves the memory tier served it.
    _key_path(tmp_path, sim_job).unlink()
    assert cache.get(sim_job) == result
    assert cache.mem_hits == 1 and cache.disk_hits == 0


def test_disk_hit_promotes_into_memory(tmp_path, sim_job):
    ResultCache(tmp_path).put(sim_job, sim_job.execute())
    cache = ResultCache(tmp_path, mem_cache_mb=4)  # fresh process, cold mem
    first = cache.get(sim_job)
    assert first is not None
    assert cache.disk_hits == 1 and cache.mem_hits == 0
    second = cache.get(sim_job)
    assert second == first
    assert cache.mem_hits == 1


def test_mem_entries_detached_from_callers(tmp_path, sim_job):
    """Mutating a returned result must not poison later hits, and two
    hits never share mutable state."""
    cache = ResultCache(tmp_path, mem_cache_mb=4)
    result = sim_job.execute()
    cache.put(sim_job, result)
    reference = sim_job.execute()
    a = cache.get(sim_job)
    a.stats["poison"] = True
    b = cache.get(sim_job)
    assert b == reference
    assert a.stats is not b.stats


def test_mem_lru_evicts_oldest_and_respects_budget(tmp_path, sim_jobs):
    cache = ResultCache(tmp_path, mem_cache_mb=4)
    results = [job.execute() for job in sim_jobs]
    sizes = [
        len(json.dumps(j.result_payload(r)).encode())
        for j, r in zip(sim_jobs, results)
    ]
    # A budget that holds some entries but not all four.
    cache.mem_budget_bytes = max(sizes) * 2
    for job, result in zip(sim_jobs, results):
        cache.put(job, result)
    assert cache._mem_bytes <= cache.mem_budget_bytes
    assert sum(size for _, size in cache._mem.values()) == cache._mem_bytes
    assert 0 < len(cache._mem) < len(sim_jobs)
    # LRU: the most recent put is resident; the oldest went first.
    assert ResultCache.job_key(sim_jobs[-1]) in cache._mem
    assert ResultCache.job_key(sim_jobs[0]) not in cache._mem
    # Everything still hits (evicted entries fall through to disk).
    for job, result in zip(sim_jobs, results):
        assert cache.get(job) == result


def test_oversized_entry_skips_memory_tier(tmp_path, sim_job):
    cache = ResultCache(tmp_path, mem_cache_mb=4)
    cache.mem_budget_bytes = 8  # smaller than any real payload
    cache.put(sim_job, sim_job.execute())
    assert len(cache._mem) == 0 and cache._mem_bytes == 0
    assert cache.get(sim_job) is not None  # disk still serves


def test_mem_tier_serves_over_corrupt_disk(tmp_path, sim_job):
    """Tier-0 semantics: a resident entry hits even when the disk copy
    is damaged underneath it (the strict read-through behaviour the
    corruption tests pin belongs to the default memory-less cache)."""
    cache = ResultCache(tmp_path, mem_cache_mb=4)
    result = sim_job.execute()
    cache.put(sim_job, result)
    _key_path(tmp_path, sim_job).write_text("ceci n'est pas du json")
    assert cache.get(sim_job) == result
    assert cache.corrupt_fallbacks == 0


# -- the backend protocol --------------------------------------------------


class DictBackend:
    """A minimal in-memory KV store implementing CacheBackend."""

    def __init__(self):
        self.data = {}
        self.stamps = {}

    def get_bytes(self, key):
        return self.data.get(key)

    def put_bytes(self, key, payload):
        self.data[key] = payload
        self.stamps[key] = time.time()

    def scan(self):
        for key, payload in list(self.data.items()):
            yield CacheEntry(key, len(payload), self.stamps[key])

    def delete(self, key):
        self.stamps.pop(key, None)
        return self.data.pop(key, None) is not None


def test_kv_backend_round_trip(sim_job):
    backend = DictBackend()
    cache = ResultCache(backend=backend)
    assert cache.directory is None
    assert cache.get(sim_job) is None
    result = sim_job.execute()
    cache.put(sim_job, result)
    assert cache.get(sim_job) == result
    assert cache.contains(sim_job)
    assert len(cache) == 1
    assert cache.stats()["entries"] == 1
    # Same bytes under the same key as the filesystem layout would store.
    key = ResultCache.job_key(sim_job)
    assert json.loads(backend.data[key]) == sim_job.result_payload(result)


def test_kv_backend_prune(sim_job, sim_jobs):
    backend = DictBackend()
    cache = ResultCache(backend=backend, mem_cache_mb=4)
    cache.put(sim_job, sim_job.execute())
    key = ResultCache.job_key(sim_job)
    backend.stamps[key] -= 3600  # age the entry an hour
    cache.put(sim_jobs[1], sim_jobs[1].execute())
    report = cache.prune(older_than_seconds=600)
    assert report["removed"] == 1 and report["kept"] == 1
    assert cache.get(sim_job) is None  # memory tier dropped too
    assert cache.get(sim_jobs[1]) is not None


def test_cache_requires_directory_or_backend():
    with pytest.raises(ValueError):
        ResultCache()


# -- stats / prune on the filesystem backend -------------------------------


def test_stats_counts_entries_and_tiers(tmp_path, sim_job, sim_jobs):
    cache = ResultCache(tmp_path, mem_cache_mb=4)
    cache.put(sim_job, sim_job.execute())
    cache.put(sim_jobs[1], sim_jobs[1].execute())
    cache.get(sim_job)        # mem hit
    ResultCache(tmp_path).get(sim_job)  # unrelated instance
    cache.get(sim_jobs[2])    # miss
    s = cache.stats()
    assert s["entries"] == 2
    assert s["total_bytes"] == sum(
        e.size for e in FilesystemBackend(tmp_path).scan()
    )
    assert s["hits"] == 1 and s["mem_hits"] == 1 and s["disk_hits"] == 0
    assert s["misses"] == 1
    assert s["mem_entries"] == 2
    assert s["mem_budget_bytes"] == 4 * 1024 * 1024


def test_prune_filesystem_removes_only_old_entries(tmp_path, sim_job, sim_jobs):
    cache = ResultCache(tmp_path, mem_cache_mb=4)
    cache.put(sim_job, sim_job.execute())
    cache.put(sim_jobs[1], sim_jobs[1].execute())
    old = _key_path(tmp_path, sim_job)
    stale = time.time() - 7200
    os.utime(old, (stale, stale))
    report = cache.prune(older_than_seconds=3600)
    assert report["removed"] == 1 and report["kept"] == 1
    assert report["removed_bytes"] > 0
    assert not old.exists()
    assert cache.get(sim_job) is None      # gone from both tiers
    assert cache.get(sim_jobs[1]) is not None


# -- the job-key memo ------------------------------------------------------


def test_job_key_memoized_and_byte_stable(sim_job):
    from repro.runner.cache import _KEY_MEMO_ATTR

    if hasattr(sim_job, _KEY_MEMO_ATTR):
        object.__delattr__(sim_job, _KEY_MEMO_ATTR)
    first = ResultCache.job_key(sim_job)
    assert getattr(sim_job, _KEY_MEMO_ATTR)[1] == first
    assert ResultCache.job_key(sim_job) == first
    # The memo must reproduce the from-scratch hash exactly.
    object.__delattr__(sim_job, _KEY_MEMO_ATTR)
    assert ResultCache.job_key(sim_job) == first


def test_job_key_memo_invalidates_on_format_bump(monkeypatch, sim_job):
    import repro.runner.cache as cache_mod

    before = ResultCache.job_key(sim_job)  # memo now warm
    monkeypatch.setattr(
        cache_mod, "PACK_FORMAT_VERSION", cache_mod.PACK_FORMAT_VERSION + 1
    )
    bumped = ResultCache.job_key(sim_job)
    assert bumped != before
    monkeypatch.undo()
    assert ResultCache.job_key(sim_job) == before
