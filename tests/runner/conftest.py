"""Shared fixtures for the runner suite: the canonical small job sets
both the BatchRunner and ResultCache tests exercise."""

import pytest

from repro.runner import SimJob


@pytest.fixture(scope="session")
def sim_jobs():
    """A small mixed batch: monolithic + hdSMT configs, two mappings of
    one pair (cache-key discrimination), distinct workloads."""
    return (
        SimJob("M8", ("gzip", "twolf"), (0, 0), 600),
        SimJob("2M4+2M2", ("gzip", "twolf", "bzip2", "mcf"), (0, 2, 1, 3), 600),
        SimJob("2M4+2M2", ("gzip", "twolf", "bzip2", "mcf"), (0, 1, 2, 3), 600),
        SimJob("3M4", ("mcf", "vpr"), (0, 1), 600),
    )


@pytest.fixture(scope="session")
def sim_job():
    """One cheap job for cache-robustness tests."""
    return SimJob("M8", ("gzip", "twolf"), (0, 0), 500)
