"""ResultCache robustness: corruption falls back to recompute, and cache
keys track the packed-trace format version (a format bump must orphan
every cached result, because packed traces feed the simulations)."""

import json


from repro.runner import BatchRunner, ResultCache
from repro.runner.screening import ScreenJob



def _cached_path(tmp_path, job):
    key = ResultCache.job_key(job)
    return tmp_path / key[:2] / f"{key}.json"


def test_truncated_cache_file_recomputes(tmp_path, sim_job):
    cache = ResultCache(tmp_path)
    result = sim_job.execute()
    cache.put(sim_job, result)
    path = _cached_path(tmp_path, sim_job)
    text = path.read_text()
    path.write_text(text[: len(text) // 2])  # truncate mid-JSON
    assert cache.get(sim_job) is None  # miss, not an exception
    # And the standard runner flow recomputes and repairs the entry.
    with BatchRunner(workers=1, cache_dir=tmp_path) as runner:
        again = runner.run_one(sim_job)
    assert again == result
    assert cache.get(sim_job) == result


def test_garbage_cache_file_recomputes(tmp_path, sim_job):
    cache = ResultCache(tmp_path)
    cache.put(sim_job, sim_job.execute())
    _cached_path(tmp_path, sim_job).write_text("ceci n'est pas du json")
    assert cache.get(sim_job) is None


def test_corrupt_entry_counts_fallback_and_logs(tmp_path, sim_job, caplog):
    """A corrupt entry is a miss AND a counted corrupt fallback with a
    warning naming what was swallowed; a plain absent entry is neither."""
    import logging

    cache = ResultCache(tmp_path)
    assert cache.get(sim_job) is None  # absent: plain miss
    assert cache.corrupt_fallbacks == 0
    cache.put(sim_job, sim_job.execute())
    _cached_path(tmp_path, sim_job).write_text("ceci n'est pas du json")
    with caplog.at_level(logging.WARNING, logger="repro.runner.cache"):
        assert cache.get(sim_job) is None
    assert cache.corrupt_fallbacks == 1
    assert cache.misses == 2
    assert any("corrupt cache entry" in r.message for r in caplog.records)


def test_corrupt_cache_entry_helper_damages_entry(tmp_path, sim_job):
    """The fault harness's parent-side helper produces entries the cache
    treats as corrupt, for both damage modes."""
    import pytest

    from repro.runner.faults import corrupt_cache_entry

    cache = ResultCache(tmp_path)
    with pytest.raises(FileNotFoundError):
        corrupt_cache_entry(cache, sim_job)
    result = sim_job.execute()
    for mode in ("truncate", "garbage"):
        cache.put(sim_job, result)
        assert cache.get(sim_job) == result
        before = cache.corrupt_fallbacks
        path = corrupt_cache_entry(cache, sim_job, mode=mode)
        assert path == _cached_path(tmp_path, sim_job)
        assert cache.get(sim_job) is None
        assert cache.corrupt_fallbacks == before + 1
    with pytest.raises(ValueError):
        cache.put(sim_job, result)
        corrupt_cache_entry(cache, sim_job, mode="arson")


def test_valid_json_with_missing_fields_is_a_miss(tmp_path, sim_job):
    cache = ResultCache(tmp_path)
    cache.put(sim_job, sim_job.execute())
    _cached_path(tmp_path, sim_job).write_text(json.dumps({"cycles": 1}))
    assert cache.get(sim_job) is None


def test_mistyped_payload_is_a_miss(tmp_path, sim_job):
    cache = ResultCache(tmp_path)
    cache.put(sim_job, sim_job.execute())
    _cached_path(tmp_path, sim_job).write_text(json.dumps([1, 2, 3]))
    assert cache.get(sim_job) is None


def test_key_changes_when_pack_format_version_bumps(monkeypatch, sim_job):
    """Packed traces feed every simulation, so the result-cache key must
    incorporate the packing format version."""
    import repro.runner.cache as cache_mod

    before_sim = ResultCache.job_key(sim_job)
    screen = ScreenJob("M8", ("gzip", "twolf"), ((0, 0),), 300)
    before_screen = ResultCache.job_key(screen)
    monkeypatch.setattr(cache_mod, "PACK_FORMAT_VERSION",
                        cache_mod.PACK_FORMAT_VERSION + 1)
    assert ResultCache.job_key(sim_job) != before_sim
    assert ResultCache.job_key(screen) != before_screen


def test_screen_job_cache_round_trip(tmp_path):
    job = ScreenJob("2M4+2M2", ("gzip", "mcf"), ((0, 2), (0, 1), (0, 0)), 300)
    cache = ResultCache(tmp_path)
    assert cache.get(job) is None
    result = job.execute()
    cache.put(job, result)
    assert cache.get(job) == result


def test_entries_land_in_two_hex_shards(tmp_path, sim_job):
    cache = ResultCache(tmp_path)
    cache.put(sim_job, sim_job.execute())
    key = ResultCache.job_key(sim_job)
    assert (tmp_path / key[:2] / f"{key}.json").exists()
    assert not (tmp_path / f"{key}.json").exists()
    assert len(cache) == 1


def test_flat_layout_migrates_at_construction(tmp_path, sim_job):
    """A pre-sharding cache directory upgrades in place: the old flat
    entry is moved into its shard and keeps hitting."""
    cache = ResultCache(tmp_path)
    result = sim_job.execute()
    cache.put(sim_job, result)
    key = ResultCache.job_key(sim_job)
    sharded = tmp_path / key[:2] / f"{key}.json"
    flat = tmp_path / f"{key}.json"
    flat.write_bytes(sharded.read_bytes())  # re-create the old layout
    sharded.unlink()
    (tmp_path / key[:2]).rmdir()

    fresh = ResultCache(tmp_path)
    assert not flat.exists()
    assert sharded.exists()
    assert fresh.get(sim_job) == result
    assert fresh.hits == 1


def test_flat_entry_read_transparently_without_migration_pass(
    tmp_path, sim_job
):
    """A flat entry that appears *after* construction (written by an
    old-layout process sharing the directory) still hits — get() falls
    back to the flat path and migrates the entry on first touch."""
    cache = ResultCache(tmp_path)
    result = sim_job.execute()
    cache.put(sim_job, result)
    key = ResultCache.job_key(sim_job)
    sharded = tmp_path / key[:2] / f"{key}.json"
    flat = tmp_path / f"{key}.json"
    sharded.rename(flat)  # demote to the old layout post-construction

    assert cache.get(sim_job) == result
    assert cache.misses == 0
    assert sharded.exists() and not flat.exists()  # migrated on touch


def test_migration_leaves_foreign_files_alone(tmp_path):
    (tmp_path / "README.json").write_text("{}")
    ResultCache(tmp_path)
    assert (tmp_path / "README.json").exists()


def test_screen_job_corrupted_entry_recomputes(tmp_path):
    job = ScreenJob("2M4+2M2", ("gzip", "mcf"), ((0, 2), (0, 1)), 300,
                    full_target=600)
    cache = ResultCache(tmp_path)
    result = job.execute()
    cache.put(job, result)
    path = _cached_path(tmp_path, job)
    payload = json.loads(path.read_text())
    del payload["final_scores"]
    path.write_text(json.dumps(payload))
    assert cache.get(job) is None
    cache.put(job, job.execute())
    assert cache.get(job) == result
