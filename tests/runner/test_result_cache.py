"""ResultCache robustness: corruption falls back to recompute, and cache
keys track the packed-trace format version (a format bump must orphan
every cached result, because packed traces feed the simulations)."""

import json


from repro.runner import BatchRunner, ResultCache
from repro.runner.screening import ScreenJob



def _cached_path(tmp_path, job):
    return tmp_path / f"{ResultCache.job_key(job)}.json"


def test_truncated_cache_file_recomputes(tmp_path, sim_job):
    cache = ResultCache(tmp_path)
    result = sim_job.execute()
    cache.put(sim_job, result)
    path = _cached_path(tmp_path, sim_job)
    text = path.read_text()
    path.write_text(text[: len(text) // 2])  # truncate mid-JSON
    assert cache.get(sim_job) is None  # miss, not an exception
    # And the standard runner flow recomputes and repairs the entry.
    with BatchRunner(workers=1, cache_dir=tmp_path) as runner:
        again = runner.run_one(sim_job)
    assert again == result
    assert cache.get(sim_job) == result


def test_garbage_cache_file_recomputes(tmp_path, sim_job):
    cache = ResultCache(tmp_path)
    cache.put(sim_job, sim_job.execute())
    _cached_path(tmp_path, sim_job).write_text("ceci n'est pas du json")
    assert cache.get(sim_job) is None


def test_corrupt_entry_counts_fallback_and_logs(tmp_path, sim_job, caplog):
    """A corrupt entry is a miss AND a counted corrupt fallback with a
    warning naming what was swallowed; a plain absent entry is neither."""
    import logging

    cache = ResultCache(tmp_path)
    assert cache.get(sim_job) is None  # absent: plain miss
    assert cache.corrupt_fallbacks == 0
    cache.put(sim_job, sim_job.execute())
    _cached_path(tmp_path, sim_job).write_text("ceci n'est pas du json")
    with caplog.at_level(logging.WARNING, logger="repro.runner.cache"):
        assert cache.get(sim_job) is None
    assert cache.corrupt_fallbacks == 1
    assert cache.misses == 2
    assert any("corrupt cache entry" in r.message for r in caplog.records)


def test_corrupt_cache_entry_helper_damages_entry(tmp_path, sim_job):
    """The fault harness's parent-side helper produces entries the cache
    treats as corrupt, for both damage modes."""
    import pytest

    from repro.runner.faults import corrupt_cache_entry

    cache = ResultCache(tmp_path)
    with pytest.raises(FileNotFoundError):
        corrupt_cache_entry(cache, sim_job)
    result = sim_job.execute()
    for mode in ("truncate", "garbage"):
        cache.put(sim_job, result)
        assert cache.get(sim_job) == result
        before = cache.corrupt_fallbacks
        path = corrupt_cache_entry(cache, sim_job, mode=mode)
        assert path == _cached_path(tmp_path, sim_job)
        assert cache.get(sim_job) is None
        assert cache.corrupt_fallbacks == before + 1
    with pytest.raises(ValueError):
        cache.put(sim_job, result)
        corrupt_cache_entry(cache, sim_job, mode="arson")


def test_valid_json_with_missing_fields_is_a_miss(tmp_path, sim_job):
    cache = ResultCache(tmp_path)
    cache.put(sim_job, sim_job.execute())
    _cached_path(tmp_path, sim_job).write_text(json.dumps({"cycles": 1}))
    assert cache.get(sim_job) is None


def test_mistyped_payload_is_a_miss(tmp_path, sim_job):
    cache = ResultCache(tmp_path)
    cache.put(sim_job, sim_job.execute())
    _cached_path(tmp_path, sim_job).write_text(json.dumps([1, 2, 3]))
    assert cache.get(sim_job) is None


def test_key_changes_when_pack_format_version_bumps(monkeypatch, sim_job):
    """Packed traces feed every simulation, so the result-cache key must
    incorporate the packing format version."""
    import repro.runner.cache as cache_mod

    before_sim = ResultCache.job_key(sim_job)
    screen = ScreenJob("M8", ("gzip", "twolf"), ((0, 0),), 300)
    before_screen = ResultCache.job_key(screen)
    monkeypatch.setattr(cache_mod, "PACK_FORMAT_VERSION",
                        cache_mod.PACK_FORMAT_VERSION + 1)
    assert ResultCache.job_key(sim_job) != before_sim
    assert ResultCache.job_key(screen) != before_screen


def test_screen_job_cache_round_trip(tmp_path):
    job = ScreenJob("2M4+2M2", ("gzip", "mcf"), ((0, 2), (0, 1), (0, 0)), 300)
    cache = ResultCache(tmp_path)
    assert cache.get(job) is None
    result = job.execute()
    cache.put(job, result)
    assert cache.get(job) == result


def test_screen_job_corrupted_entry_recomputes(tmp_path):
    job = ScreenJob("2M4+2M2", ("gzip", "mcf"), ((0, 2), (0, 1)), 300,
                    full_target=600)
    cache = ResultCache(tmp_path)
    result = job.execute()
    cache.put(job, result)
    path = tmp_path / f"{ResultCache.job_key(job)}.json"
    payload = json.loads(path.read_text())
    del payload["final_scores"]
    path.write_text(json.dumps(payload))
    assert cache.get(job) is None
    cache.put(job, job.execute())
    assert cache.get(job) == result
