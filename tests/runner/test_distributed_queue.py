"""JobQueue on-disk protocol: atomicity, exactly-one-winner races, and
crash-mid-write durability.

The queue is the whole coordination surface of distributed execution, so
its invariants are pinned directly — including the two crash windows
atomic writes exist for (a writer killed between temp-file write and
rename, for task records and cache entries) and the reclamation race
(two reclaimers on one expired lease; exactly one may win).
"""

import os
import subprocess
import sys
import time
from pathlib import Path

from repro.runner import ResultCache, SimJob
from repro.runner.distributed import JobQueue
from repro.runner.distributed.queue import base_task_id

JOB = SimJob("M8", ("gzip", "twolf"), (0, 0), 400)

SRC = str(Path(__file__).resolve().parents[2] / "src")


# -- basic protocol ---------------------------------------------------------


def test_enqueue_load_round_trip(tmp_path):
    q = JobQueue(tmp_path)
    q.enqueue("b1-j0000", JOB)
    assert q.task_ids() == ["b1-j0000"]
    assert q.load_task("b1-j0000") == JOB
    assert q.load_task("b1-j9999") is None


def test_torn_task_record_is_unclaimable_not_fatal(tmp_path):
    q = JobQueue(tmp_path)
    (q.tasks_dir / "b1-j0000.task").write_bytes(b"\x80\x04 torn")
    assert q.load_task("b1-j0000") is None
    assert q.task_ids() == ["b1-j0000"]  # visible, just unreadable


def test_tmp_orphans_are_invisible(tmp_path):
    q = JobQueue(tmp_path)
    (q.tasks_dir / "orphan.tmp").write_bytes(b"half a record")
    assert q.task_ids() == []


def test_claim_is_exclusive_and_renewable(tmp_path):
    q = JobQueue(tmp_path)
    q.enqueue("b1-j0000", JOB)
    assert q.try_claim("b1-j0000", "w1", ttl=60.0)
    assert not q.try_claim("b1-j0000", "w2", ttl=60.0)
    lease = q.read_lease("b1-j0000")
    assert lease.owner == "w1" and not lease.expired()
    q.renew("b1-j0000", "w1", ttl=120.0)
    assert q.read_lease("b1-j0000").expiry > lease.expiry - 1.0
    q.release("b1-j0000")
    assert q.read_lease("b1-j0000") is None


def test_release_with_owner_spares_foreign_lease(tmp_path):
    q = JobQueue(tmp_path)
    assert q.try_claim("b1-j0000", "w1", ttl=60.0)
    q.release("b1-j0000", owner="w2")  # not yours: no-op
    assert q.read_lease("b1-j0000").owner == "w1"
    q.release("b1-j0000", owner="w1")
    assert q.read_lease("b1-j0000") is None


def test_unreadable_lease_payload_still_counts_as_claimed(tmp_path):
    """A claimant killed between O_EXCL create and payload write leaves
    an empty lease file: still a claim, expiring ttl past its mtime."""
    q = JobQueue(tmp_path)
    (q.leases_dir / "b1-j0000.lease").touch()
    lease = q.read_lease("b1-j0000", default_ttl=30.0)
    assert lease is not None
    assert lease.owner == "<unknown>"
    assert not lease.expired()
    assert q.read_lease("b1-j0000", default_ttl=0.0).expired()


def test_publish_is_first_wins(tmp_path):
    q = JobQueue(tmp_path)
    assert q.publish("b1-j0000", {"result": "first"})
    assert not q.publish("b1-j0000", {"result": "second"})
    assert q.load_result("b1-j0000") == {"result": "first"}
    # Speculative twins publish under the base id and hit the same gate.
    assert not q.publish("b1-j0000~s1", {"result": "spec"})
    assert q.load_result("b1-j0000") == {"result": "first"}


def test_speculative_ids_collapse_to_base(tmp_path):
    assert base_task_id("b1-j0007~s1") == "b1-j0007"
    assert base_task_id("b1-j0007") == "b1-j0007"


def test_failure_ordinals_are_sequential_and_shared(tmp_path):
    q = JobQueue(tmp_path)
    assert q.record_failure("b1-j0000", "boom 1") == 1
    assert q.record_failure("b1-j0000~s1", "boom 2") == 2  # same budget
    assert q.failure_count("b1-j0000") == 2
    assert q.last_failure("b1-j0000") == "boom 2"
    assert q.failure_count("b1-j0001") == 0
    assert q.last_failure("b1-j0001") is None


def test_worker_registry_liveness_window(tmp_path):
    q = JobQueue(tmp_path)
    q.heartbeat_worker("w1")
    assert "w1" in q.live_workers(ttl=10.0)
    assert q.live_workers(ttl=0.0) == {}
    q.unregister_worker("w1")
    assert q.live_workers(ttl=10.0) == {}


def test_stop_marker_round_trip(tmp_path):
    q = JobQueue(tmp_path)
    assert not q.stop_requested()
    q.request_stop()
    assert q.stop_requested()
    q.clear_stop()
    assert not q.stop_requested()


def test_cleanup_batch_scopes_to_prefix(tmp_path):
    q = JobQueue(tmp_path)
    q.enqueue("b1-j0000", JOB)
    q.enqueue("b2-j0000", JOB)
    q.try_claim("b1-j0000", "w1", ttl=60.0)
    q.publish("b1-j0000", {"result": 1})
    q.record_failure("b1-j0000", "x")
    q.cleanup_batch("b1")
    assert q.task_ids() == ["b2-j0000"]
    assert q.read_lease("b1-j0000") is None
    assert q.load_result("b1-j0000") is None
    assert q.failure_count("b1-j0000") == 0


def test_config_round_trip(tmp_path):
    q = JobQueue(tmp_path)
    assert q.read_config() == {}
    q.write_config("/some/cache", None)
    assert q.read_config() == {"cache_dir": "/some/cache", "store_dir": None}


# -- exactly-one-winner reclamation race ------------------------------------


_RECLAIM_CHILD = """
import sys, time
from repro.runner.distributed import JobQueue

root, go, out = sys.argv[1], sys.argv[2], sys.argv[3]
q = JobQueue(root)
import os
while not os.path.exists(go):   # start barrier: maximize overlap
    time.sleep(0.001)
won = q.reclaim("b1-j0000")
open(out, "w").write("1" if won else "0")
"""


def test_racing_reclaimers_exactly_one_winner(tmp_path):
    """N processes race to reclaim one expired lease; the tombstone
    rename guarantees exactly one winner."""
    q = JobQueue(tmp_path / "q")
    q.enqueue("b1-j0000", JOB)
    assert q.try_claim("b1-j0000", "dead-worker", ttl=0.0)  # born expired

    go = tmp_path / "go"
    outs = [tmp_path / f"out{i}" for i in range(4)]
    env = dict(os.environ, PYTHONPATH=SRC)
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", _RECLAIM_CHILD,
             str(tmp_path / "q"), str(go), str(out)],
            env=env,
        )
        for out in outs
    ]
    time.sleep(1.0)  # let every child reach the spin barrier
    go.touch()
    for p in procs:
        assert p.wait(timeout=30) == 0
    wins = [out.read_text() for out in outs]
    assert wins.count("1") == 1, wins
    assert q.read_lease("b1-j0000") is None  # claimable again


# -- crash-mid-write durability ---------------------------------------------

_KILLED_ENQUEUE = """
import os, sys
import repro.ioutil as ioutil

real_replace = os.replace
def die_before_rename(src, dst):
    os._exit(9)           # killed in the crash window: tmp written, no rename
os.replace = die_before_rename

from repro.runner import SimJob
from repro.runner.distributed import JobQueue
q = JobQueue(sys.argv[1])
q.enqueue("b1-j0000", SimJob("M8", ("gzip", "twolf"), (0, 0), 400))
"""


def test_enqueue_killed_between_write_and_rename(tmp_path):
    """A front end killed between temp-file write and rename must leave
    nothing claimable — only an invisible ``*.tmp`` orphan."""
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.run(
        [sys.executable, "-c", _KILLED_ENQUEUE, str(tmp_path / "q")],
        env=env, capture_output=True, text=True,
    )
    assert proc.returncode == 9
    q = JobQueue(tmp_path / "q")
    assert q.task_ids() == []            # nothing claimable
    assert q.load_task("b1-j0000") is None
    orphans = list(q.tasks_dir.glob("*.tmp"))
    assert len(orphans) == 1             # the crash window's leftover
    # A restarted front end re-enqueues over the orphan cleanly.
    q.enqueue("b1-j0000", JOB)
    assert q.load_task("b1-j0000") == JOB


_KILLED_CACHE_PUT = """
import os, sys

real_replace = os.replace
def die_before_rename(src, dst):
    os._exit(9)
os.replace = die_before_rename

from repro.runner import ResultCache, SimJob
job = SimJob("M8", ("gzip", "twolf"), (0, 0), 400)
cache = ResultCache(sys.argv[1])
cache.put(job, job.execute())
"""


def test_cache_put_killed_between_write_and_rename(tmp_path):
    """A worker killed mid-``ResultCache.put`` leaves a miss, never a
    torn entry: the next reader recomputes and repairs."""
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.run(
        [sys.executable, "-c", _KILLED_CACHE_PUT, str(tmp_path / "c")],
        env=env, capture_output=True, text=True,
    )
    assert proc.returncode == 9
    cache = ResultCache(tmp_path / "c")
    assert cache.get(JOB) is None
    assert cache.corrupt_fallbacks == 0  # a clean miss, not corruption
    shard = cache._path(cache.job_key(JOB)).parent
    assert list(shard.glob("*.tmp"))     # the orphan the rename never ran on
    result = JOB.execute()
    cache.put(JOB, result)               # repair path
    assert cache.get(JOB) == result
