"""Fault-injection chaos suite: every recovery path of the supervised
dispatch exercised with a real 2-worker process pool — injected worker
raises, deaths (``os._exit``), hangs past the job timeout, and corrupted
cache entries — asserting bit-identical ordered results throughout."""

import json

import pytest

from repro.runner import BatchRunner, ResultCache, RetryPolicy, SimJob
from repro.runner.faults import (
    FaultRule,
    InjectedFault,
    load_fault_plan,
    maybe_inject_fault,
)

#: Four cheap jobs; seeds make each job's repr uniquely matchable.
JOBS = tuple(
    SimJob("M8", ("gzip", "twolf"), (0, 0), 400, seed=100 + i)
    for i in range(4)
)

#: Generous vs the ~0.1s a job really takes, tiny vs an injected hang.
FAST_POLICY = RetryPolicy(
    max_attempts=3, backoff_base=0.05, backoff_max=0.2, timeout=20.0
)


@pytest.fixture()
def fault_env(monkeypatch, tmp_path):
    """Arm the harness: returns a setter the test calls with its rules."""
    state = tmp_path / "fault-state"
    monkeypatch.setenv("REPRO_FAULT_STATE", str(state))

    def arm(rules):
        monkeypatch.setenv("REPRO_FAULT_PLAN", json.dumps(rules))

    return arm


@pytest.fixture(scope="module")
def reference_results():
    """The fault-free ground truth every chaos run must reproduce."""
    with BatchRunner(workers=1, trace_store=False) as runner:
        return runner.run(JOBS)


# ----------------------------------------------------------------- plan layer


def test_load_fault_plan_inline_and_file(tmp_path, monkeypatch):
    rules = [{"match": "mcf", "op": "raise", "executions": [2]}]
    assert load_fault_plan(json.dumps(rules)) == [
        FaultRule(match="mcf", op="raise", executions=(2,))
    ]
    plan_file = tmp_path / "plan.json"
    plan_file.write_text(json.dumps(rules))
    assert load_fault_plan(f"@{plan_file}") == load_fault_plan(json.dumps(rules))
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    assert load_fault_plan() == []
    with pytest.raises(ValueError):
        FaultRule(match="", op="explode")


def test_plan_without_state_dir_fails_loudly(monkeypatch):
    monkeypatch.setenv(
        "REPRO_FAULT_PLAN", json.dumps([{"match": "", "op": "raise"}])
    )
    monkeypatch.delenv("REPRO_FAULT_STATE", raising=False)
    with pytest.raises(RuntimeError, match="REPRO_FAULT_STATE"):
        maybe_inject_fault(JOBS[0])


def test_ordinals_fire_exactly_once(monkeypatch, tmp_path):
    """The Nth matching execution fires, every other one passes."""
    monkeypatch.setenv("REPRO_FAULT_STATE", str(tmp_path / "state"))
    monkeypatch.setenv(
        "REPRO_FAULT_PLAN",
        json.dumps([{"match": "gzip", "op": "raise", "executions": [2]}]),
    )
    maybe_inject_fault(JOBS[0])  # execution 1: passes
    with pytest.raises(InjectedFault):
        maybe_inject_fault(JOBS[0])  # execution 2: fires
    maybe_inject_fault(JOBS[0])  # execution 3: passes again


# ------------------------------------------------------------ recovery paths


def _chaos_run(policy=FAST_POLICY, cache_dir=None, **runner_kw):
    with BatchRunner(
        workers=2, trace_store=False, policy=policy, cache_dir=cache_dir,
        **runner_kw,
    ) as runner:
        results = runner.run(JOBS)
        return results, runner.report


def test_transient_raise_succeeds_on_retry(fault_env, reference_results):
    arm = fault_env
    arm([{"match": "seed=101", "op": "raise", "executions": [1]}])
    results, report = _chaos_run()
    assert results == reference_results
    assert report.retries >= 1
    assert report.failures == 0


def test_worker_death_respawns_pool(fault_env, reference_results):
    arm = fault_env
    arm([{"match": "seed=102", "op": "die", "executions": [1]}])
    results, report = _chaos_run()
    assert results == reference_results
    assert report.pool_respawns >= 1
    assert report.failures == 0


def test_hang_times_out_and_retries(fault_env, reference_results):
    arm = fault_env
    arm([
        {"match": "seed=103", "op": "hang", "executions": [1],
         "hang_seconds": 60.0},
    ])
    policy = RetryPolicy(
        max_attempts=3, backoff_base=0.05, backoff_max=0.2, timeout=2.0
    )
    results, report = _chaos_run(policy=policy)
    assert results == reference_results
    assert report.timeouts >= 1
    # Reclaiming the hung worker requires killing + respawning the pool.
    assert report.pool_respawns >= 1
    assert report.failures == 0


def test_repeated_pool_breaks_degrade_to_inline(fault_env, reference_results):
    """When the pool keeps dying past its respawn budget, the batch
    degrades to inline execution instead of failing."""
    arm = fault_env
    # Three death ordinals: one pool break can consume at most two of
    # them (one per worker), so the respawned pool is guaranteed to die
    # again and blow the respawn budget whatever the scheduling.
    arm([{"match": "", "op": "die", "executions": [1, 2, 3]}])
    policy = RetryPolicy(
        max_attempts=3, backoff_base=0.05, backoff_max=0.2, timeout=20.0,
        max_pool_respawns=1,
    )
    results, report = _chaos_run(policy=policy)
    assert results == reference_results
    assert report.inline_fallbacks >= 1
    assert report.failures == 0


def test_permanent_fault_exhausts_attempts(fault_env):
    from repro.runner.resilience import JobError

    arm = fault_env
    arm([{"match": "seed=100", "op": "raise", "executions": [1, 2, 3, 4, 5]}])
    with BatchRunner(workers=2, trace_store=False, policy=FAST_POLICY) as r:
        with pytest.raises(JobError):
            r.run(JOBS)
    assert r.report.retries >= FAST_POLICY.max_attempts - 1
    assert r.report.failures == 1


def test_corrupted_cache_entry_recomputes_in_pool(tmp_path, reference_results):
    from repro.runner.faults import corrupt_cache_entry

    cache_dir = tmp_path / "cache"
    cache = ResultCache(cache_dir)
    for job, result in zip(JOBS, reference_results):
        cache.put(job, result)
    corrupt_cache_entry(cache, JOBS[2], mode="truncate")
    results, report = _chaos_run(cache_dir=cache_dir)
    assert results == reference_results
    assert report.cache_fallbacks >= 1
    # The recompute repaired the damaged entry in place.
    assert ResultCache(cache_dir).get(JOBS[2]) == reference_results[2]


def test_repeated_hangs_degrade_to_inline(fault_env, reference_results):
    """Deadline-triggered pool kills count against the respawn budget,
    so an environment that hangs repeatedly degrades to inline execution
    exactly like one that crashes repeatedly."""
    arm = fault_env
    arm([
        {"match": "", "op": "hang", "executions": [1, 2, 3, 4, 5, 6, 7, 8],
         "hang_seconds": 60.0},
    ])
    policy = RetryPolicy(
        max_attempts=5, backoff_base=0.05, backoff_max=0.2, timeout=1.5,
        max_pool_respawns=0,
    )
    results, report = _chaos_run(policy=policy)
    assert results == reference_results
    assert report.timeouts >= 1
    # Budget 0: the first hang-induced kill already degrades the batch.
    assert report.inline_fallbacks >= 1
    assert report.failures == 0


def test_queued_jobs_do_not_burn_their_timeout_budget(fault_env):
    """Per-job deadlines start when the job starts running: with many
    more jobs than workers and per-job runtimes near the budget, queue
    wait must not surface as spurious timeouts (which would kill the
    pool under the feet of healthy jobs)."""
    arm = fault_env
    # Every execution sleeps 0.7s inside the worker: 6 jobs on 2 workers
    # means the batch tail waits ~2s for a slot — spurious timeouts if
    # the 2s budget started at enqueue time instead of start time.
    arm([
        {"match": "", "op": "hang", "executions": list(range(1, 13)),
         "hang_seconds": 0.7},
    ])
    jobs = [
        SimJob("M8", ("gzip", "twolf"), (0, 0), 400, seed=200 + i)
        for i in range(6)
    ]
    with BatchRunner(workers=1, trace_store=False) as runner:
        expected = runner.run(jobs)
    policy = RetryPolicy(
        max_attempts=3, backoff_base=0.05, backoff_max=0.2, timeout=2.0
    )
    with BatchRunner(workers=2, trace_store=False, policy=policy) as runner:
        results = runner.run(jobs)
        report = runner.report
    assert results == expected
    assert report.timeouts == 0
    assert report.pool_respawns == 0
    assert report.failures == 0


def test_fault_plan_parsed_once_per_env_value(monkeypatch, tmp_path):
    """maybe_inject_fault sits on the production worker entry point: the
    plan must be parsed once per process per env value, not per job."""
    import repro.runner.faults as faults

    monkeypatch.setattr(faults, "_plan_cache", (None, ()))
    calls = {"n": 0}
    real = faults.load_fault_plan

    def counting(env=None):
        calls["n"] += 1
        return real(env)

    monkeypatch.setattr(faults, "load_fault_plan", counting)
    monkeypatch.setenv("REPRO_FAULT_STATE", str(tmp_path / "state"))
    monkeypatch.setenv(
        "REPRO_FAULT_PLAN",
        json.dumps([{"match": "no-such-job", "op": "raise"}]),
    )
    faults.maybe_inject_fault(JOBS[0])
    faults.maybe_inject_fault(JOBS[0])
    faults.maybe_inject_fault(JOBS[1])
    assert calls["n"] == 1
    # A changed plan value is picked up (reparsed exactly once).
    monkeypatch.setenv(
        "REPRO_FAULT_PLAN",
        json.dumps([{"match": "still-no-such-job", "op": "raise"}]),
    )
    faults.maybe_inject_fault(JOBS[0])
    faults.maybe_inject_fault(JOBS[0])
    assert calls["n"] == 2


# ------------------------------------------------------- acceptance scenario


def test_chaos_sweep_is_bit_identical_to_fault_free(
    fault_env, tmp_path, reference_results
):
    """The ISSUE's acceptance scenario: one worker death + one hang + one
    corrupted cache entry in a single sweep, which must complete with
    results bit-identical to the fault-free run while the RunReport
    records >=1 pool respawn, >=1 timeout retry and >=1 cache fallback."""
    from repro.runner.faults import corrupt_cache_entry

    cache_dir = tmp_path / "cache"
    cache = ResultCache(cache_dir)
    # One job has a (corrupted) cache entry, one a healthy one, and the
    # two uncached jobs carry the injected faults.
    cache.put(JOBS[0], reference_results[0])
    corrupt_cache_entry(cache, JOBS[0], mode="garbage")
    cache.put(JOBS[3], reference_results[3])
    arm = fault_env
    # The hang gets two ordinals: its first execution may be aborted by
    # the death-induced pool break before the deadline fires, and the
    # resubmission must still hang for the timeout path to trigger.
    arm([
        {"match": "seed=101", "op": "die", "executions": [1]},
        {"match": "seed=102", "op": "hang", "executions": [1, 2],
         "hang_seconds": 60.0},
    ])
    policy = RetryPolicy(
        max_attempts=3, backoff_base=0.05, backoff_max=0.2, timeout=3.0
    )
    results, report = _chaos_run(policy=policy, cache_dir=cache_dir)
    assert results == reference_results
    assert report.pool_respawns >= 1
    assert report.timeouts >= 1
    assert report.retries >= 1
    assert report.cache_fallbacks >= 1
    assert report.failures == 0
    # The sweep repaired every cache entry: a fresh fault-free pass over
    # the same cache is all hits serving identical payloads.
    fresh = ResultCache(cache_dir)
    assert [fresh.get(j) for j in JOBS] == list(reference_results)
    assert fresh.hits == len(JOBS) and fresh.corrupt_fallbacks == 0


# ------------------------------------------------------------- scoped rules


def test_fault_rule_scope_parsing_and_validation():
    rule = FaultRule.from_dict(
        {"op": "stale-lease", "scope": "worker", "hang_seconds": 1.5}
    )
    assert rule.op == "stale_lease"  # dash form normalized
    assert rule.scope == "worker"
    with pytest.raises(ValueError, match="scope"):
        FaultRule(match="", op="raise", scope="mars")
    with pytest.raises(ValueError, match="fault op"):
        FaultRule(match="", op="segfault")


def test_out_of_scope_rule_neither_fires_nor_consumes_ordinal(
    monkeypatch, tmp_path
):
    """A worker-scoped rule is invisible to pool executions: no fault,
    and no ordinal burned (the same plan must fire identically however
    many pool executions happen first)."""
    state = tmp_path / "state"
    monkeypatch.setenv("REPRO_FAULT_STATE", str(state))
    monkeypatch.setenv(
        "REPRO_FAULT_PLAN",
        json.dumps([{"match": "", "op": "raise", "executions": [1],
                     "scope": "worker"}]),
    )
    from repro.runner.faults import maybe_inject_fault

    job = JOBS[0]
    for _ in range(3):  # pool context: never fires, never claims
        assert maybe_inject_fault(job, context="pool") is None
    assert not list(state.iterdir())  # no ordinals consumed
    with pytest.raises(InjectedFault):
        maybe_inject_fault(job, context="worker")  # still execution #1


def test_stale_lease_rule_returned_to_worker_context_only(
    monkeypatch, tmp_path
):
    state = tmp_path / "state"
    monkeypatch.setenv("REPRO_FAULT_STATE", str(state))
    monkeypatch.setenv(
        "REPRO_FAULT_PLAN",
        json.dumps([{"match": "", "op": "stale_lease",
                     "executions": [1, 2], "hang_seconds": 0.5}]),
    )
    from repro.runner.faults import maybe_inject_fault

    job = JOBS[0]
    # Pool context: stale_lease is meaningless (no lease) — skipped
    # entirely even though the rule's scope is "any".
    assert maybe_inject_fault(job, context="pool") is None
    assert not list(state.iterdir())
    directive = maybe_inject_fault(job, context="worker")
    assert directive is not None
    assert directive.op == "stale_lease"
    assert directive.hang_seconds == 0.5


def test_hung_bundle_is_resplit_across_the_pool(fault_env):
    """A continuation bundle that hangs past its budget is re-split into
    sub-bundles across the idle workers instead of being retried whole —
    byte-identical results, and the rescue shows up in the report."""
    from repro.runner.continuation import ContinuationJob, ContinuationRun

    runs = tuple(
        ContinuationRun("M8", ("gzip", "twolf"), (0, 0), 400, seed=150 + i)
        for i in range(8)
    )
    bundles = [ContinuationJob(runs=runs[:4]), ContinuationJob(runs=runs[4:])]
    with BatchRunner(workers=2, trace_store=False) as runner:
        reference = runner.run(bundles)

    arm = fault_env
    # The first execution that touches run seed=150 is the whole first
    # bundle; it hangs far past the 2s budget, gets killed, and its
    # sub-bundles (which re-match the rule but draw later ordinals)
    # run clean.
    arm([{"match": "seed=150", "op": "hang", "executions": [1],
          "hang_seconds": 60.0}])
    policy = RetryPolicy(
        max_attempts=3, backoff_base=0.05, backoff_max=0.2, timeout=2.0
    )
    with BatchRunner(workers=2, trace_store=False, policy=policy) as runner:
        results = runner.run(bundles)
        report = runner.report
    assert results == reference
    assert report.split_rescues >= 1
    assert report.timeouts >= 1
    assert report.failures == 0
    assert "split rescues" in report.describe()


def test_resplit_disabled_retries_whole(fault_env, monkeypatch):
    """REPRO_SPLIT_RETRY=0 keeps the legacy whole-bundle retry."""
    from repro.runner.continuation import ContinuationJob, ContinuationRun

    monkeypatch.setenv("REPRO_SPLIT_RETRY", "0")
    runs = tuple(
        ContinuationRun("M8", ("gzip", "twolf"), (0, 0), 400, seed=160 + i)
        for i in range(4)
    )
    bundles = [ContinuationJob(runs=runs[:2]), ContinuationJob(runs=runs[2:])]
    arm = fault_env
    arm([{"match": "seed=160", "op": "hang", "executions": [1],
          "hang_seconds": 60.0}])
    policy = RetryPolicy(
        max_attempts=3, backoff_base=0.05, backoff_max=0.2, timeout=2.0
    )
    with BatchRunner(workers=2, trace_store=False, policy=policy) as runner:
        results = runner.run(bundles)
        report = runner.report
    assert [len(r) for r in results] == [2, 2]
    assert report.split_rescues == 0
    assert report.timeouts >= 1
    assert report.failures == 0
