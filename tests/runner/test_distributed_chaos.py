"""Distributed chaos suite: real ``repro worker`` processes under the
deterministic fault harness.

Every scenario runs a genuine fleet — separate Python processes serving
the queue over the filesystem — and asserts the acceptance contract:
results byte-identical to local execution, zero failed jobs, and the
RunReport showing the recovery events the injected plan forced
(worker death → lease reclamation; a hang past the straggler deadline →
speculative re-dispatch; a stale lease → takeover with a settled
double-publish race; a whole fleet dying → local fallback).

This file is the ``make chaos-remote`` CI lane.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.runner import BatchRunner, JobQueue, SimJob
from repro.runner.cache import sim_result_payload


def _canonical_bytes(results):
    """A canonical serialization for byte-identity assertions (pickle
    streams vary with object-graph sharing even for equal values)."""
    return json.dumps(
        [sim_result_payload(r) for r in results], sort_keys=True
    ).encode()

SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Cheap jobs; unique seeds make every job's repr uniquely matchable.
JOBS = tuple(
    SimJob("M8", ("gzip", "twolf"), (0, 0), 400, seed=200 + i)
    for i in range(12)
)

#: Worker lease lifetime: short enough that reclamation happens fast,
#: long enough that the 3x-per-ttl renewal cadence is easy to sustain.
WORKER_TTL = 0.8


@pytest.fixture(scope="module")
def reference_results():
    """Fault-free local ground truth for the full job set."""
    with BatchRunner(workers=1, trace_store=False) as runner:
        return runner.run(JOBS)


@pytest.fixture()
def dist_env(monkeypatch, tmp_path):
    """Front-end knobs sized for the test box: patient grace (worker
    processes take ~1s to boot), short-ish liveness window, eager
    speculation."""
    monkeypatch.setenv("REPRO_DIST_GRACE", "30")
    monkeypatch.setenv("REPRO_LEASE_TTL", "2.0")
    monkeypatch.setenv("REPRO_SPEC_QUANTILE", "0.25")
    monkeypatch.setenv("REPRO_SPEC_FACTOR", "1.0")
    monkeypatch.setenv("REPRO_FAULT_STATE", str(tmp_path / "fault-state"))
    return tmp_path


def _spawn_workers(queue_dir, count, plan=None, state=None, extra_env=None):
    env = dict(os.environ, PYTHONPATH=SRC)
    env.pop("REPRO_FAULT_PLAN", None)
    if plan is not None:
        env["REPRO_FAULT_PLAN"] = json.dumps(plan)
        env["REPRO_FAULT_STATE"] = str(state)
    if extra_env:
        env.update(extra_env)
    procs = []
    for i in range(count):
        procs.append(subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--queue", str(queue_dir),
             "--worker-id", f"cw{i}",
             "--lease-ttl", str(WORKER_TTL)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        ))
    return procs


def _wait_for_fleet(queue_dir, count, timeout=30.0):
    q = JobQueue(queue_dir)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if len(q.live_workers(ttl=5.0)) >= count:
            return
        time.sleep(0.05)
    raise AssertionError(f"fleet of {count} never registered")


def _stop_fleet(queue_dir, procs, timeout=20.0):
    JobQueue(queue_dir).request_stop()
    deadline = time.monotonic() + timeout
    for p in procs:
        remaining = max(0.5, deadline - time.monotonic())
        try:
            p.wait(timeout=remaining)
        except subprocess.TimeoutExpired:
            p.kill()
            p.wait(timeout=10)


# -- scenarios ---------------------------------------------------------------


def test_clean_two_worker_fleet_is_bit_identical(dist_env,
                                                 reference_results):
    qdir = dist_env / "q"
    with BatchRunner(workers=2, queue_dir=qdir) as runner:
        procs = _spawn_workers(qdir, 2)
        try:
            _wait_for_fleet(qdir, 2)
            results = runner.run(list(JOBS))
            report = runner.report
        finally:
            _stop_fleet(qdir, procs)
    assert results == reference_results
    assert _canonical_bytes(results) == _canonical_bytes(reference_results)
    assert report.enqueued == len(JOBS)
    assert report.failures == 0
    assert report.local_fallbacks == 0
    assert {p.returncode for p in procs} == {0}


def test_worker_death_reclaims_lease(dist_env, reference_results):
    qdir = dist_env / "q"
    plan = [{"match": "", "op": "die", "executions": [1],
             "scope": "worker", "exit_code": 17}]
    with BatchRunner(workers=2, queue_dir=qdir) as runner:
        procs = _spawn_workers(qdir, 2, plan=plan,
                               state=dist_env / "fault-state")
        try:
            _wait_for_fleet(qdir, 2)
            results = runner.run(list(JOBS))
            report = runner.report
        finally:
            _stop_fleet(qdir, procs)
    assert results == reference_results
    assert _canonical_bytes(results) == _canonical_bytes(reference_results)
    assert report.lease_reclaims >= 1
    assert report.failures == 0
    assert report.local_fallbacks == 0
    assert 17 in {p.returncode for p in procs}  # exactly the injected death


def test_hang_past_deadline_is_speculated_around(dist_env,
                                                 reference_results):
    qdir = dist_env / "q"
    # The hang fires late (its 6th worker-side execution) so the
    # completion-time distribution exists and speculation is armed; the
    # renewer keeps the lease alive throughout, so this is precisely the
    # straggler case, not the dead-worker case.
    plan = [{"match": "", "op": "hang", "executions": [6],
             "scope": "worker", "hang_seconds": 6.0}]
    with BatchRunner(workers=2, queue_dir=qdir) as runner:
        procs = _spawn_workers(qdir, 2, plan=plan,
                               state=dist_env / "fault-state")
        try:
            _wait_for_fleet(qdir, 2)
            results = runner.run(list(JOBS))
            report = runner.report
        finally:
            _stop_fleet(qdir, procs)
    assert results == reference_results
    assert _canonical_bytes(results) == _canonical_bytes(reference_results)
    assert report.speculations >= 1
    assert report.failures == 0
    assert report.local_fallbacks == 0


def test_stale_lease_takeover_settles_double_publish(dist_env,
                                                     reference_results):
    qdir = dist_env / "q"
    # Renewal freezes and the worker stalls well past its ttl before
    # executing anyway: someone reclaims and re-runs the task, then two
    # executions race to publish — first-wins must settle it with one
    # result and no failure.
    plan = [{"match": "", "op": "stale-lease", "executions": [2],
             "scope": "worker", "hang_seconds": 2.5}]
    with BatchRunner(workers=2, queue_dir=qdir) as runner:
        procs = _spawn_workers(qdir, 2, plan=plan,
                               state=dist_env / "fault-state")
        try:
            _wait_for_fleet(qdir, 2)
            results = runner.run(list(JOBS))
            report = runner.report
        finally:
            _stop_fleet(qdir, procs)
    assert results == reference_results
    assert _canonical_bytes(results) == _canonical_bytes(reference_results)
    assert report.lease_reclaims >= 1
    assert report.failures == 0
    assert report.local_fallbacks == 0


def test_acceptance_sweep_under_combined_chaos(dist_env,
                                               reference_results):
    """The PR's headline scenario: one worker dies, one execution goes
    stale-leased, one hangs past the straggler deadline — all in one
    sweep, which must still be byte-identical with zero failed jobs and
    an eventful report."""
    qdir = dist_env / "q"
    plan = [
        {"match": "", "op": "die", "executions": [1],
         "scope": "worker", "exit_code": 17},
        {"match": "", "op": "stale-lease", "executions": [2],
         "scope": "worker", "hang_seconds": 2.0},
        {"match": "", "op": "hang", "executions": [6],
         "scope": "worker", "hang_seconds": 5.0},
    ]
    with BatchRunner(workers=2, queue_dir=qdir) as runner:
        procs = _spawn_workers(qdir, 2, plan=plan,
                               state=dist_env / "fault-state")
        try:
            _wait_for_fleet(qdir, 2)
            results = runner.run(list(JOBS))
            report = runner.report
        finally:
            _stop_fleet(qdir, procs)
    assert results == reference_results
    assert _canonical_bytes(results) == _canonical_bytes(reference_results)
    assert report.lease_reclaims >= 1
    assert report.speculations >= 1
    assert report.failures == 0
    assert report.enqueued == len(JOBS)
    assert report.eventful
    assert "lease reclaims" in report.describe()


def test_straggler_bundle_tail_is_stolen(dist_env, monkeypatch):
    """Forced-straggler steal: continuation bundles on a two-worker
    fleet, one execution hangs past the straggler deadline.  With the
    shared cache wired in, the front end steals the hung bundle's
    un-started tail into fresh sub-tasks instead of dispatching a whole
    twin — and the sweep stays byte-identical with zero failures."""
    from repro.runner.continuation import ContinuationJob, ContinuationRun

    runs = tuple(
        ContinuationRun("M8", ("gzip", "twolf"), (0, 0), 400, seed=300 + i)
        for i in range(12)
    )
    bundles = [
        ContinuationJob(runs=runs[i:i + 2]) for i in range(0, 12, 2)
    ]
    with BatchRunner(workers=1, trace_store=False) as local:
        reference = local.run(bundles)

    qdir = dist_env / "q"
    plan = [{"match": "", "op": "hang", "executions": [4],
             "scope": "worker", "hang_seconds": 8.0}]
    with BatchRunner(workers=2, queue_dir=qdir,
                     cache_dir=dist_env / "steal-cache") as runner:
        procs = _spawn_workers(qdir, 2, plan=plan,
                               state=dist_env / "fault-state")
        try:
            _wait_for_fleet(qdir, 2)
            results = runner.run(bundles)
            report = runner.report
        finally:
            _stop_fleet(qdir, procs)
    assert results == reference
    flat = [r for bundle in results for r in bundle]
    flat_ref = [r for bundle in reference for r in bundle]
    assert _canonical_bytes(flat) == _canonical_bytes(flat_ref)
    assert report.steals >= 1
    assert report.failures == 0
    assert report.local_fallbacks == 0
    assert "steals" in report.describe()


def test_whole_fleet_dying_degrades_to_local(dist_env, monkeypatch,
                                             reference_results):
    """Both workers die on their first executions: the fleet goes dark
    and the front end drains the remainder through the local supervised
    pool — the sweep still finishes, byte-identical."""
    monkeypatch.setenv("REPRO_DIST_GRACE", "2.0")
    qdir = dist_env / "q"
    plan = [{"match": "", "op": "die", "executions": [1, 2],
             "scope": "worker", "exit_code": 17}]
    with BatchRunner(workers=2, queue_dir=qdir) as runner:
        procs = _spawn_workers(qdir, 2, plan=plan,
                               state=dist_env / "fault-state")
        try:
            _wait_for_fleet(qdir, 2)
            results = runner.run(list(JOBS))
            report = runner.report
        finally:
            _stop_fleet(qdir, procs)
    assert results == reference_results
    assert _canonical_bytes(results) == _canonical_bytes(reference_results)
    assert report.local_fallbacks == 1
    assert report.failures == 0
    assert [p.returncode for p in procs] == [17, 17]
