"""Supervised dispatch: equivalence with the legacy pool.map path,
policy/report plumbing, submission/deadline/salvage semantics, Ctrl-C
behaviour, lifecycle hygiene."""

import logging
import time
from concurrent.futures import BrokenExecutor, Future

import pytest

from repro.runner import (
    BatchRunner,
    RetryPolicy,
    RunReport,
    SimJob,
    SupervisedExecutor,
)
from repro.runner.batch import resolve_workers
from repro.runner.resilience import JobError, _BatchState, _Flight


# ---------------------------------------------------------------- equivalence


def test_supervised_matches_pool_map_and_inline(sim_jobs):
    """The tentpole contract: the supervised per-job-future path returns
    bit-identical, identically ordered results to both the old pool.map
    dispatch and plain inline execution."""
    with BatchRunner(workers=1, trace_store=False) as seq:
        inline = seq.run(sim_jobs)
    with BatchRunner(workers=2, trace_store=False) as legacy:
        pool_map = legacy._run_pool_map(sim_jobs)
    with BatchRunner(workers=2, trace_store=False) as sup:
        supervised = sup.run(sim_jobs)
        report = sup.report
    assert supervised == pool_map == inline
    assert [r.mapping for r in supervised] == [j.mapping for j in sim_jobs]
    # A healthy run is not eventful, and accounting is exact.
    assert not report.eventful
    assert report.jobs == report.attempts == len(sim_jobs)
    assert len(report.job_seconds) == len(sim_jobs)


def test_report_accumulates_across_batches(sim_jobs):
    with BatchRunner(workers=2, trace_store=False) as runner:
        runner.run(sim_jobs)
        runner.run(sim_jobs)
        assert runner.report.batches == 2
        assert runner.report.jobs == 2 * len(sim_jobs)


def test_inline_batches_share_the_report(sim_jobs):
    with BatchRunner(workers=1) as runner:
        runner.run(sim_jobs[:2])
    assert runner.report.batches == 1
    assert runner.report.jobs == 2
    assert runner.report.attempts == 2
    assert runner.report.wall_seconds > 0


def test_hard_failure_raises_job_error_with_context():
    bad = SimJob("M8", ("gzip", "twolf"), (0, 1), 300)  # invalid mapping
    good = [SimJob("M8", ("gzip", "twolf"), (0, 0), 300, seed=i)
            for i in range(3)]
    policy = RetryPolicy(max_attempts=2, backoff_base=0.01)
    with BatchRunner(workers=2, trace_store=False, policy=policy) as runner:
        with pytest.raises(JobError) as exc_info:
            runner.run(good + [bad])
    assert exc_info.value.attempts == 2
    assert exc_info.value.job == bad
    assert runner.report.retries >= 1


# ---------------------------------------------------------------- RetryPolicy


def test_backoff_schedule_is_exponential_and_clamped():
    p = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_max=0.5)
    assert p.backoff_for(1) == pytest.approx(0.1)
    assert p.backoff_for(2) == pytest.approx(0.2)
    assert p.backoff_for(3) == pytest.approx(0.4)
    assert p.backoff_for(4) == pytest.approx(0.5)  # clamped
    assert p.backoff_for(10) == pytest.approx(0.5)


def test_heavy_jobs_get_a_larger_timeout_budget(sim_jobs):
    from repro.runner.screening import ScreenJob

    p = RetryPolicy(timeout=10.0, heavy_timeout_factor=4.0)
    light = sim_jobs[0]
    heavy = ScreenJob("M8", ("gzip", "twolf"), ((0, 0),), 300)
    assert heavy.heavy and not light.heavy
    assert p.timeout_for(light) == pytest.approx(10.0)
    assert p.timeout_for(heavy) == pytest.approx(40.0)
    assert RetryPolicy(timeout=None).timeout_for(light) is None


def test_policy_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_MAX_ATTEMPTS", "5")
    monkeypatch.setenv("REPRO_JOB_TIMEOUT", "12.5")
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.25")
    monkeypatch.setenv("REPRO_MAX_POOL_RESPAWNS", "1")
    p = RetryPolicy.from_env()
    assert p.max_attempts == 5
    assert p.timeout == pytest.approx(12.5)
    assert p.backoff_base == pytest.approx(0.25)
    assert p.max_pool_respawns == 1


def test_policy_from_env_ignores_garbage(monkeypatch, caplog):
    monkeypatch.setenv("REPRO_MAX_ATTEMPTS", "lots")
    monkeypatch.setenv("REPRO_JOB_TIMEOUT", "soon")
    with caplog.at_level(logging.WARNING, logger="repro.runner.resilience"):
        p = RetryPolicy.from_env()
    assert p.max_attempts == RetryPolicy.max_attempts
    assert p.timeout is None
    assert len([r for r in caplog.records if "ignoring" in r.message]) == 2


# ------------------------------------------------- supervision internals


class _StubPool:
    """Pool stand-in whose submit() never runs anything, so the inflight
    set is exactly what the supervisor chose to submit."""

    def __init__(self, max_workers=2):
        self._max_workers = max_workers
        self.submitted = []

    def submit(self, fn, *args):
        fut = Future()
        self.submitted.append(fut)
        return fut

    def shutdown(self, wait=True, cancel_futures=False):
        pass


def _stub_executor(policy=None, max_workers=2, **kw):
    pool = _StubPool(max_workers)
    ex = SupervisedExecutor(
        pool_factory=lambda: pool,
        worker_fn=lambda job: (job, None),
        inline_fn=lambda job: (job, None),
        policy=policy or RetryPolicy(backoff_base=0.0),
        **kw,
    )
    return ex, pool


def test_submissions_capped_at_worker_count():
    """Jobs are handed to the pool only when a worker can take them, so
    a per-job deadline (assigned at submission) starts when the job
    starts running — queued jobs must not burn their wall-clock budget
    waiting behind a long batch."""
    ex, pool = _stub_executor(max_workers=2)
    jobs = list(range(6))
    st = _BatchState(len(jobs))
    ex._submit_queued(jobs, st)
    assert len(st.inflight) == 2  # capped at pool._max_workers
    assert len(st.queue) == 4
    # A completed future frees a slot; the refill tops back up to the cap.
    fut = pool.submitted[0]
    fut.set_result((0, None))
    assert not ex._harvest({fut}, jobs, st)
    ex._submit_queued(jobs, st)
    assert len(st.inflight) == 2
    assert len(st.queue) == 3
    assert ex.report.attempts == 3


def test_explicit_max_inflight_overrides_pool_size():
    ex, _pool = _stub_executor(max_workers=4, max_inflight=1)
    st = _BatchState(3)
    ex._submit_queued(list(range(3)), st)
    assert len(st.inflight) == 1


def test_expired_unstarted_future_is_cancelled_without_penalty():
    """A deadline that elapses while the future is still pending (e.g.
    transiently around a pool respawn) cancels the future and requeues
    the job: no timeout charged, no attempt burned, no pool kill."""
    ex, pool = _stub_executor(policy=RetryPolicy(timeout=5.0))
    jobs = ["j0"]
    st = _BatchState(1)
    ex._submit_queued(jobs, st)
    (fut,) = pool.submitted
    st.inflight[fut].deadline = time.monotonic() - 1.0  # already expired
    ex._check_deadlines(jobs, st)
    assert fut.cancelled()
    assert list(st.queue) == [(0, 1)]  # same attempt, back in line
    assert ex.report.timeouts == 0
    assert ex.report.pool_respawns == 0
    assert ex._pool is pool  # the healthy pool survived


def test_salvage_charges_completed_failures_their_attempt():
    """A future that finished with a real job exception before the pool
    went down counts the attempt (a deterministic failure must not dodge
    max_attempts by riding pool breaks); only never-completed futures
    requeue penalty-free."""
    policy = RetryPolicy(max_attempts=3, backoff_base=0.0)
    ex, _pool = _stub_executor(policy=policy)
    jobs = ["a", "b", "c"]
    st = _BatchState(3)
    st.queue.clear()
    failed = Future()
    failed.set_exception(ValueError("boom"))
    pending = Future()
    pool_fault = Future()
    pool_fault.set_exception(BrokenExecutor("pool died"))
    st.inflight[failed] = _Flight(0, 1, time.monotonic(), None)
    st.inflight[pending] = _Flight(1, 2, time.monotonic(), None)
    st.inflight[pool_fault] = _Flight(2, 2, time.monotonic(), None)
    ex._salvage_inflight(jobs, st)
    assert not st.inflight
    # Job 0 failed for real: charged, waiting in the retry heap at
    # attempt 2. Jobs 1 and 2 never completed / died with the pool:
    # requeued at their old attempt numbers.
    assert [(i, a) for _, _, i, a in sorted(st.retries)] == [(0, 2)]
    assert sorted(st.queue) == [(1, 2), (2, 2)]


def test_salvage_propagates_exhausted_attempts_as_job_error():
    policy = RetryPolicy(max_attempts=2, backoff_base=0.0)
    ex, _pool = _stub_executor(policy=policy)
    st = _BatchState(1)
    st.queue.clear()
    failed = Future()
    failed.set_exception(ValueError("permanent"))
    st.inflight[failed] = _Flight(0, 2, time.monotonic(), None)
    with pytest.raises(JobError) as exc_info:
        ex._salvage_inflight(["the-job"], st)
    assert exc_info.value.attempts == 2
    assert exc_info.value.job == "the-job"
    assert ex.report.failures == 1


def test_inline_drain_retries_and_keeps_the_failure_contract():
    """The degraded path honours the same retry budget and JobError
    contract as the pool path."""
    calls = {"n": 0}

    def flaky(job):
        calls["n"] += 1
        if calls["n"] == 1:
            raise ValueError("transient")
        return job * 10, None

    ex = SupervisedExecutor(
        pool_factory=lambda: _StubPool(),
        worker_fn=None,
        inline_fn=flaky,
        policy=RetryPolicy(max_attempts=3, backoff_base=0.0),
    )
    st = _BatchState(2)
    ex._drain_inline([1, 2], st)
    assert st.results == [10, 20]
    assert st.remaining == 0
    assert ex.report.retries == 1
    assert ex.report.failures == 0
    assert ex.report.inline_fallbacks == 2  # per job, not per attempt
    assert ex.report.attempts == 3


def test_inline_drain_exhaustion_raises_job_error():
    def always_fail(job):
        raise ValueError("permanent")

    ex = SupervisedExecutor(
        pool_factory=lambda: _StubPool(),
        worker_fn=None,
        inline_fn=always_fail,
        policy=RetryPolicy(max_attempts=2, backoff_base=0.0),
    )
    st = _BatchState(1)
    with pytest.raises(JobError) as exc_info:
        ex._drain_inline([7], st)
    assert exc_info.value.attempts == 2
    assert exc_info.value.job == 7
    assert ex.report.failures == 1
    assert ex.report.attempts == 2


def test_inline_drain_carries_prior_attempts_into_the_budget():
    """A job that already burned pool attempts keeps its count inline:
    the total budget is max_attempts across both paths."""

    def always_fail(job):
        raise ValueError("permanent")

    ex = SupervisedExecutor(
        pool_factory=lambda: _StubPool(),
        worker_fn=None,
        inline_fn=always_fail,
        policy=RetryPolicy(max_attempts=3, backoff_base=0.0),
    )
    st = _BatchState(1)
    st.queue.clear()
    st.queue.append((0, 3))  # two pool attempts already failed
    with pytest.raises(JobError) as exc_info:
        ex._drain_inline(["j"], st)
    assert exc_info.value.attempts == 3
    assert ex.report.attempts == 1  # only the one inline execution


# ------------------------------------------------------------------ RunReport


def test_run_report_merge_and_dict_round_trip():
    a = RunReport(jobs=2, attempts=3, retries=1, job_seconds=[0.1, 0.2])
    b = RunReport(jobs=1, attempts=1, pool_respawns=1, wall_seconds=1.5,
                  job_seconds=[0.3])
    a.merge(b)
    assert (a.jobs, a.attempts, a.retries, a.pool_respawns) == (3, 4, 1, 1)
    assert a.job_seconds == [0.1, 0.2, 0.3]
    d = a.as_dict()
    assert d["jobs"] == 3
    assert d["job_seconds_max"] == pytest.approx(0.3)
    assert a.eventful  # retries + respawns fired
    assert not RunReport(jobs=5, attempts=5).eventful
    assert "1 retries" in a.describe()


def test_report_absorbs_worker_stats():
    r = RunReport()
    r.absorb_worker_stats(None)
    r.absorb_worker_stats({})
    r.absorb_worker_stats({"cache_fallbacks": 2})
    assert r.cache_fallbacks == 2


# ------------------------------------------------------------------ lifecycle


def test_keyboard_interrupt_cleans_up_and_runner_recovers(
    monkeypatch, sim_jobs
):
    """Ctrl-C mid-batch must propagate promptly, kill the pool rather
    than leaking workers, and leave the runner usable afterwards."""
    calls = {"n": 0}
    original = SupervisedExecutor._wait_for_events

    def interrupt_once(self, st, timeout):
        if calls["n"] == 0:
            calls["n"] += 1
            raise KeyboardInterrupt
        return original(self, st, timeout)

    monkeypatch.setattr(SupervisedExecutor, "_wait_for_events", interrupt_once)
    runner = BatchRunner(workers=2, trace_store=False)
    try:
        with pytest.raises(KeyboardInterrupt):
            runner.run(sim_jobs)
        # The supervisor (and its pool) was torn down on the way out...
        assert runner._supervisor is None
        # ...and a fresh run still works (jobs are idempotent).
        results = runner.run(sim_jobs)
        assert [r.mapping for r in results] == [j.mapping for j in sim_jobs]
    finally:
        runner.close()


def test_close_is_idempotent_and_del_safe(sim_jobs):
    runner = BatchRunner(workers=2, trace_store=False)
    runner.run(sim_jobs)
    runner.close()
    runner.close()  # double close must be a no-op
    runner.__del__()  # and explicit finalization after close too
    assert runner._supervisor is None


def test_supervised_executor_close_idempotent():
    ex = SupervisedExecutor(
        pool_factory=lambda: (_ for _ in ()).throw(AssertionError),
        worker_fn=None,
        inline_fn=None,
    )
    assert ex.run([]) == []  # empty batch never builds a pool
    ex.close()
    ex.close(kill=True)


def test_resolve_workers_logs_invalid_env(monkeypatch, caplog):
    monkeypatch.setenv("REPRO_WORKERS", "many")
    with caplog.at_level(logging.WARNING, logger="repro.runner.batch"):
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers()
    assert any("invalid REPRO_WORKERS" in r.message for r in caplog.records)


# ------------------------------------------------------------- retry jitter


def test_backoff_jitter_deterministic_and_bounded():
    import random as _random

    policy = RetryPolicy(backoff_base=1.0, backoff_factor=1.0,
                         backoff_max=10.0, jitter=0.5)
    draws_a = [policy.backoff_for(1, rng=_random.Random(42))
               for _ in range(50)]
    # Same seed, same schedule: deterministic when seeded.
    draws_b = [policy.backoff_for(1, rng=_random.Random(42))
               for _ in range(50)]
    assert draws_a == draws_b
    # One evolving RNG spreads the delays within 1 +- jitter/2.
    rng = _random.Random(7)
    spread = [policy.backoff_for(1, rng=rng) for _ in range(200)]
    assert all(0.75 <= d <= 1.25 for d in spread)
    assert len(set(spread)) > 100  # actually spread, not a constant


def test_zero_jitter_keeps_exact_legacy_schedule():
    policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                         backoff_max=1.0)
    assert policy.backoff_for(1) == pytest.approx(0.1)
    assert policy.backoff_for(2) == pytest.approx(0.2)
    assert policy.backoff_for(5) == pytest.approx(1.0)  # clamped


def test_jitter_policy_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_RETRY_JITTER", "0.3")
    assert RetryPolicy.from_env().jitter == pytest.approx(0.3)
    monkeypatch.setenv("REPRO_RETRY_JITTER", "-1")
    assert RetryPolicy.from_env().jitter == 0.0  # clamped, never negative


def test_supervised_executor_jitter_rng_seeded_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_RETRY_JITTER_SEED", "421")
    a = SupervisedExecutor(pool_factory=None, worker_fn=None, inline_fn=None)
    b = SupervisedExecutor(pool_factory=None, worker_fn=None, inline_fn=None)
    assert [a._rng.random() for _ in range(5)] == [
        b._rng.random() for _ in range(5)
    ]


def test_run_report_distributed_counters_round_trip():
    a = RunReport(jobs=2, enqueued=2, lease_reclaims=1, speculations=1)
    b = RunReport(jobs=1, local_fallbacks=1)
    a.merge(b)
    assert (a.enqueued, a.lease_reclaims, a.speculations,
            a.local_fallbacks) == (2, 1, 1, 1)
    assert a.eventful
    d = a.as_dict()
    assert d["lease_reclaims"] == 1 and d["speculations"] == 1
    text = a.describe()
    assert "1 lease reclaims" in text
    assert "1 speculative re-dispatches" in text
    assert "1 local fallbacks" in text
    # Purely-local reports keep the legacy one-liner.
    assert "lease" not in RunReport(jobs=5, attempts=5).describe()
