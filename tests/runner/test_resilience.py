"""Supervised dispatch: equivalence with the legacy pool.map path,
policy/report plumbing, Ctrl-C behaviour, lifecycle hygiene."""

import logging

import pytest

from repro.runner import (
    BatchRunner,
    RetryPolicy,
    RunReport,
    SimJob,
    SupervisedExecutor,
)
from repro.runner.batch import resolve_workers
from repro.runner.resilience import JobError


# ---------------------------------------------------------------- equivalence


def test_supervised_matches_pool_map_and_inline(sim_jobs):
    """The tentpole contract: the supervised per-job-future path returns
    bit-identical, identically ordered results to both the old pool.map
    dispatch and plain inline execution."""
    with BatchRunner(workers=1, trace_store=False) as seq:
        inline = seq.run(sim_jobs)
    with BatchRunner(workers=2, trace_store=False) as legacy:
        pool_map = legacy._run_pool_map(sim_jobs)
    with BatchRunner(workers=2, trace_store=False) as sup:
        supervised = sup.run(sim_jobs)
        report = sup.report
    assert supervised == pool_map == inline
    assert [r.mapping for r in supervised] == [j.mapping for j in sim_jobs]
    # A healthy run is not eventful, and accounting is exact.
    assert not report.eventful
    assert report.jobs == report.attempts == len(sim_jobs)
    assert len(report.job_seconds) == len(sim_jobs)


def test_report_accumulates_across_batches(sim_jobs):
    with BatchRunner(workers=2, trace_store=False) as runner:
        runner.run(sim_jobs)
        runner.run(sim_jobs)
        assert runner.report.batches == 2
        assert runner.report.jobs == 2 * len(sim_jobs)


def test_inline_batches_share_the_report(sim_jobs):
    with BatchRunner(workers=1) as runner:
        runner.run(sim_jobs[:2])
    assert runner.report.batches == 1
    assert runner.report.jobs == 2
    assert runner.report.attempts == 2
    assert runner.report.wall_seconds > 0


def test_hard_failure_raises_job_error_with_context():
    bad = SimJob("M8", ("gzip", "twolf"), (0, 1), 300)  # invalid mapping
    good = [SimJob("M8", ("gzip", "twolf"), (0, 0), 300, seed=i)
            for i in range(3)]
    policy = RetryPolicy(max_attempts=2, backoff_base=0.01)
    with BatchRunner(workers=2, trace_store=False, policy=policy) as runner:
        with pytest.raises(JobError) as exc_info:
            runner.run(good + [bad])
    assert exc_info.value.attempts == 2
    assert exc_info.value.job == bad
    assert runner.report.retries >= 1


# ---------------------------------------------------------------- RetryPolicy


def test_backoff_schedule_is_exponential_and_clamped():
    p = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_max=0.5)
    assert p.backoff_for(1) == pytest.approx(0.1)
    assert p.backoff_for(2) == pytest.approx(0.2)
    assert p.backoff_for(3) == pytest.approx(0.4)
    assert p.backoff_for(4) == pytest.approx(0.5)  # clamped
    assert p.backoff_for(10) == pytest.approx(0.5)


def test_heavy_jobs_get_a_larger_timeout_budget(sim_jobs):
    from repro.runner.screening import ScreenJob

    p = RetryPolicy(timeout=10.0, heavy_timeout_factor=4.0)
    light = sim_jobs[0]
    heavy = ScreenJob("M8", ("gzip", "twolf"), ((0, 0),), 300)
    assert heavy.heavy and not light.heavy
    assert p.timeout_for(light) == pytest.approx(10.0)
    assert p.timeout_for(heavy) == pytest.approx(40.0)
    assert RetryPolicy(timeout=None).timeout_for(light) is None


def test_policy_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_MAX_ATTEMPTS", "5")
    monkeypatch.setenv("REPRO_JOB_TIMEOUT", "12.5")
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.25")
    monkeypatch.setenv("REPRO_MAX_POOL_RESPAWNS", "1")
    p = RetryPolicy.from_env()
    assert p.max_attempts == 5
    assert p.timeout == pytest.approx(12.5)
    assert p.backoff_base == pytest.approx(0.25)
    assert p.max_pool_respawns == 1


def test_policy_from_env_ignores_garbage(monkeypatch, caplog):
    monkeypatch.setenv("REPRO_MAX_ATTEMPTS", "lots")
    monkeypatch.setenv("REPRO_JOB_TIMEOUT", "soon")
    with caplog.at_level(logging.WARNING, logger="repro.runner.resilience"):
        p = RetryPolicy.from_env()
    assert p.max_attempts == RetryPolicy.max_attempts
    assert p.timeout is None
    assert len([r for r in caplog.records if "ignoring" in r.message]) == 2


# ------------------------------------------------------------------ RunReport


def test_run_report_merge_and_dict_round_trip():
    a = RunReport(jobs=2, attempts=3, retries=1, job_seconds=[0.1, 0.2])
    b = RunReport(jobs=1, attempts=1, pool_respawns=1, wall_seconds=1.5,
                  job_seconds=[0.3])
    a.merge(b)
    assert (a.jobs, a.attempts, a.retries, a.pool_respawns) == (3, 4, 1, 1)
    assert a.job_seconds == [0.1, 0.2, 0.3]
    d = a.as_dict()
    assert d["jobs"] == 3
    assert d["job_seconds_max"] == pytest.approx(0.3)
    assert a.eventful  # retries + respawns fired
    assert not RunReport(jobs=5, attempts=5).eventful
    assert "1 retries" in a.describe()


def test_report_absorbs_worker_stats():
    r = RunReport()
    r.absorb_worker_stats(None)
    r.absorb_worker_stats({})
    r.absorb_worker_stats({"cache_fallbacks": 2})
    assert r.cache_fallbacks == 2


# ------------------------------------------------------------------ lifecycle


def test_keyboard_interrupt_cleans_up_and_runner_recovers(
    monkeypatch, sim_jobs
):
    """Ctrl-C mid-batch must propagate promptly, kill the pool rather
    than leaking workers, and leave the runner usable afterwards."""
    calls = {"n": 0}
    original = SupervisedExecutor._wait_for_events

    def interrupt_once(self, st, timeout):
        if calls["n"] == 0:
            calls["n"] += 1
            raise KeyboardInterrupt
        return original(self, st, timeout)

    monkeypatch.setattr(SupervisedExecutor, "_wait_for_events", interrupt_once)
    runner = BatchRunner(workers=2, trace_store=False)
    try:
        with pytest.raises(KeyboardInterrupt):
            runner.run(sim_jobs)
        # The supervisor (and its pool) was torn down on the way out...
        assert runner._supervisor is None
        # ...and a fresh run still works (jobs are idempotent).
        results = runner.run(sim_jobs)
        assert [r.mapping for r in results] == [j.mapping for j in sim_jobs]
    finally:
        runner.close()


def test_close_is_idempotent_and_del_safe(sim_jobs):
    runner = BatchRunner(workers=2, trace_store=False)
    runner.run(sim_jobs)
    runner.close()
    runner.close()  # double close must be a no-op
    runner.__del__()  # and explicit finalization after close too
    assert runner._supervisor is None


def test_supervised_executor_close_idempotent():
    ex = SupervisedExecutor(
        pool_factory=lambda: (_ for _ in ()).throw(AssertionError),
        worker_fn=None,
        inline_fn=None,
    )
    assert ex.run([]) == []  # empty batch never builds a pool
    ex.close()
    ex.close(kill=True)


def test_resolve_workers_logs_invalid_env(monkeypatch, caplog):
    monkeypatch.setenv("REPRO_WORKERS", "many")
    with caplog.at_level(logging.WARNING, logger="repro.runner.batch"):
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers()
    assert any("invalid REPRO_WORKERS" in r.message for r in caplog.records)
