#!/usr/bin/env python
"""Throughput-regression tripwire (the CI ``perf-gate`` job).

Snapshots the committed ``BENCH_000N.json`` baseline *before* the
benchmarks overwrite it, re-runs the throughput suite
(``RUN_BENCH=1 pytest benchmarks/test_simulator_throughput.py
benchmarks/test_service_latency.py benchmarks/test_codegen_speedup.py
benchmarks/test_cache_tiers.py``),
then compares the fresh ``perf_gate`` reference section of
``BENCH_0010.json`` (written by ``test_cache_tiers``, whose gate sweep
and single-sims run the local supervised path with no result cache in
the loop, so the gate keeps measuring the engine; the same snapshot
records the warm-tier and work-stealing A/Bs) — single-simulation cycles/sec
and the fixed-scale reference-sweep wall clock — against the newest
committed snapshot that records one (baseline discovery walks
``BENCH_0*.json`` newest-first, so appending ``BENCH_000N`` snapshots
keeps working). A regression beyond ``PERF_GATE_TOLERANCE`` (default
0.25, i.e. >25%) fails the gate.

The gate section is recorded at a *fixed* window scale
(``GATE_SCALE`` in the benchmark module), so fresh and baseline numbers
are always same-shape — no cross-scale normalization. The numbers are
still machine-dependent: the tripwire assumes the comparison runs on
hardware of the same class that recorded the baseline (one CI runner
family, or the same dev box). 25% is far above run-to-run noise for
these benchmarks but far below the cost of a real engine regression
(e.g. a disabled fetch-block cache costs 5-10x).

Exit status: 0 (pass / record-only when no baseline exists), 1 (regression
or missing fresh snapshot), pytest's status when the benchmark run fails.
"""

from __future__ import annotations

import json
import os
import platform
import shlex
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
FRESH_SNAPSHOT = REPO_ROOT / "BENCH_0010.json"


def snapshot_number(path: Path) -> int:
    digits = path.stem.split("_")[-1]
    return int(digits) if digits.isdigit() else -1


def load_gate_baseline() -> tuple[dict, Path] | tuple[None, None]:
    """The ``perf_gate`` section of the newest committed snapshot that
    carries one (read before the benchmarks overwrite the files)."""
    for path in sorted(REPO_ROOT.glob("BENCH_0*.json"),
                       key=snapshot_number, reverse=True):
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        gate = payload.get("perf_gate")
        if isinstance(gate, dict) and "cycles_per_second" in gate:
            return gate, path
    return None, None


def machine_class() -> str:
    return f"{platform.system()}-{platform.machine()}-cpu{os.cpu_count()}"


def run_benchmarks() -> int:
    env = dict(os.environ)
    env.setdefault("RUN_BENCH", "1")
    env.setdefault("REPRO_SIM_SCALE", "0.1")
    env.setdefault("PYTHONPATH", str(REPO_ROOT / "src"))
    cmd = [sys.executable, "-m", "pytest",
           "benchmarks/test_simulator_throughput.py",
           "benchmarks/test_service_latency.py",
           "benchmarks/test_codegen_speedup.py",
           "benchmarks/test_cache_tiers.py", "-q"]
    # e.g. PERF_GATE_PYTEST_ARGS="-k test_continuation_sweep_throughput"
    # narrows the run to just the test that produces the gate reference.
    extra = os.environ.get("PERF_GATE_PYTEST_ARGS")
    if extra:
        cmd.extend(shlex.split(extra))
    print(f"[perf-gate] running: {' '.join(cmd)} "
          f"(REPRO_SIM_SCALE={env['REPRO_SIM_SCALE']})", flush=True)
    return subprocess.call(cmd, cwd=REPO_ROOT, env=env)


def main() -> int:
    tolerance = float(os.environ.get("PERF_GATE_TOLERANCE", "0.25"))
    baseline, baseline_path = load_gate_baseline()

    # The benchmark modules rewrite every BENCH_000N.json they own; only
    # BENCH_0010 carries the fresh gate reference (and merge-protects its
    # other sections itself). Preserve the other committed snapshots —
    # they are this-machine historical records, not gate outputs — so the
    # gate never leaves the tree dirty with wrong-machine numbers.
    preserved = {
        path: path.read_text()
        for path in sorted(REPO_ROOT.glob("BENCH_0*.json"))
        if path != FRESH_SNAPSHOT
    }
    try:
        status = run_benchmarks()
    finally:
        for path, text in preserved.items():
            path.write_text(text)
    if status != 0:
        print(f"[perf-gate] FAIL: benchmark run exited {status}")
        return status

    try:
        fresh = json.loads(FRESH_SNAPSHOT.read_text())["perf_gate"]
    except (OSError, ValueError, KeyError):
        print(f"[perf-gate] FAIL: {FRESH_SNAPSHOT} lacks a perf_gate "
              "section after the benchmark run")
        return 1

    if baseline is None:
        print("[perf-gate] no committed BENCH_000N.json records a "
              "perf_gate baseline yet: recording-only pass "
              f"(fresh reference written to {FRESH_SNAPSHOT})")
        return 0

    base_machine = baseline.get("machine")
    here = machine_class()
    if base_machine is not None and base_machine != here:
        # Absolute throughput numbers do not transfer across machine
        # classes; enforcing would produce false regressions (or false
        # passes) on the first run on new hardware. Record-only: promote
        # the uploaded fresh snapshot to the committed baseline to start
        # enforcing on this class.
        print(f"[perf-gate] baseline {baseline_path.name} was recorded on "
              f"'{base_machine}' but this run is on '{here}': "
              "recording-only pass (commit the fresh snapshot to enforce "
              "on this machine class)")
        return 0

    print(f"[perf-gate] baseline: {baseline_path.name}, "
          f"tolerance: {tolerance:.0%}")
    failures = []

    base_cps = baseline["cycles_per_second"]
    fresh_cps = fresh["cycles_per_second"]
    for config, base in sorted(base_cps.items()):
        now = fresh_cps.get(config)
        if now is None:
            failures.append(f"cycles/sec for {config}: missing in fresh run")
            continue
        floor = (1.0 - tolerance) * base
        verdict = "ok" if now >= floor else "REGRESSION"
        print(f"[perf-gate]   {config}: {now:,} cycles/s vs baseline "
              f"{base:,} (floor {floor:,.0f}) -> {verdict}")
        if now < floor:
            failures.append(
                f"cycles/sec for {config}: {now:,} < {floor:,.0f} "
                f"({tolerance:.0%} below baseline {base:,})"
            )

    base_sweep = baseline.get("sweep_seconds_best")
    fresh_sweep = fresh.get("sweep_seconds_best")
    if base_sweep:
        if not fresh_sweep:
            # Half the tripwire silently disappearing is itself a failure.
            failures.append("reference-sweep wall clock: missing in fresh run")
        else:
            ceiling = (1.0 + tolerance) * base_sweep
            verdict = "ok" if fresh_sweep <= ceiling else "REGRESSION"
            print(f"[perf-gate]   reference sweep: {fresh_sweep:.2f} s vs "
                  f"baseline {base_sweep:.2f} s (ceiling {ceiling:.2f}) "
                  f"-> {verdict}")
            if fresh_sweep > ceiling:
                failures.append(
                    f"reference-sweep wall clock: {fresh_sweep:.2f} s > "
                    f"{ceiling:.2f} s ({tolerance:.0%} above baseline "
                    f"{base_sweep:.2f} s)"
                )

    if failures:
        print("[perf-gate] FAIL:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("[perf-gate] PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
