"""PR 8 snapshot (``BENCH_0008.json``): the simulation service.

The service's hard guarantees are behavioural — byte-identical warm/
cold/coalesced responses, exactly-one execution under a concurrent
identical storm, orphan-free SIGTERM drain — pinned deterministically
by ``tests/service/``.  The numbers that matter here are the serving
economics against a real ``repro serve`` daemon over a unix socket:

* **cold vs warm latency** — the first request for a sweep pays for the
  simulation; every later identical request (any tenant) is served from
  the shared sharded ``ResultCache`` without touching the pool;
* **warm requests/sec** — the daemon's throughput ceiling for repeat
  traffic (connect + frame round trip + cache read per request);
* **the coalescing storm** — 50 concurrent identical cold requests,
  asserted to execute exactly one simulation (49 coalesced) with every
  response byte-identical.

The snapshot also carries the standard **perf-gate reference** section
(fixed ``GATE_SCALE``, same shape and methodology as BENCH_0007's; the
gate sweep runs the local supervised path, so it keeps measuring the
engine, not the service).  Since PR 9 ``benchmarks/perf_gate.py`` reads
its *fresh* gate reference from ``BENCH_0009.json``
(``test_codegen_speedup``); this section remains the committed
historical record.  Sections written by other benches are preserved —
merge, never clobber.
"""

import json
import os
import platform
import subprocess
import sys
import threading
import time
from pathlib import Path

from test_simulator_throughput import (
    GATE_SCALE,
    GATE_SINGLE_TARGET,
    GATE_WORKERS,
    SWEEP_CONFIGS,
    SWEEP_SCALE,
    SWEEP_WORKLOADS,
    seed_baseline_cycles_per_second,
)

from repro.core.config import get_config
from repro.core.processor import Processor, clear_warm_cache
from repro.runner import BatchRunner
from repro.service import ServiceClient
from repro.trace.stream import clear_trace_cache, trace_for

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = str(_REPO_ROOT / "src")
SERVICE_SNAPSHOT = _REPO_ROOT / "BENCH_0008.json"

#: The reference request: the sweep every tenant asks for (three
#: distinct sims so the daemon's runner actually exercises a batch).
_SIM = {
    "config": "M8",
    "benchmarks": ["gzip", "twolf", "bzip2", "mcf"],
    "mapping": [0, 0, 0, 0],
    "commit_target": 2000,
}
REFERENCE_SWEEP = {"sims": [dict(_SIM, seed=s) for s in range(3)]}

#: Warm-tier throughput sample size (sequential identical submits).
WARM_REQUESTS = 50

#: The storm: concurrent identical *cold* requests.  The request's
#: execution takes orders of magnitude longer than the 50 submissions,
#: so every subscriber attaches to the first flight.
STORM_CLIENTS = 50
STORM_SPEC = {
    "config": "2M4+2M2",
    "benchmarks": ["gzip", "twolf", "bzip2", "mcf"],
    "mapping": [0, 2, 1, 3],
    "commit_target": 20000,
    "seed": 77,
}


def _start_daemon(tmp_path):
    sock = str(tmp_path / "serve.sock")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", sock,
         "--cache", str(tmp_path / "cache"), "--jobs", "2",
         "--max-queue", str(2 * STORM_CLIENTS), "--quiet"],
        env=dict(os.environ, PYTHONPATH=_SRC),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    client = ServiceClient(socket_path=sock, timeout=300)
    deadline = time.monotonic() + 60
    while True:
        try:
            client.ping()
            return proc, client, sock
        except (ConnectionError, OSError):
            if time.monotonic() > deadline:
                proc.terminate()
                raise
            time.sleep(0.1)


def test_service_latency(tmp_path):
    """Cold/warm latency and warm requests/sec against a live daemon,
    the 50-client coalescing storm, and the perf-gate reference."""
    proc, client, sock = _start_daemon(tmp_path)
    try:
        # --- cold: the first tenant pays for the simulation --------------
        t0 = time.perf_counter()
        client.submit("sweep", REFERENCE_SWEEP)
        cold_seconds = time.perf_counter() - t0
        reference_text = client.last_payload_text

        # --- warm: every later identical request is cache-served ---------
        warm_times = []
        t_all = time.perf_counter()
        for _ in range(WARM_REQUESTS):
            t0 = time.perf_counter()
            client.submit("sweep", REFERENCE_SWEEP)
            warm_times.append(time.perf_counter() - t0)
            assert client.last_payload_text == reference_text
        warm_wall = time.perf_counter() - t_all
        warm_rps = WARM_REQUESTS / warm_wall

        stats = client.status()
        assert stats["executed"] == 1
        assert stats["cache_served"] == WARM_REQUESTS

        # --- the coalescing storm ----------------------------------------
        barrier = threading.Barrier(STORM_CLIENTS)
        texts = [None] * STORM_CLIENTS
        errors = []

        def tenant(i):
            c = ServiceClient(socket_path=sock, timeout=300)
            barrier.wait()
            try:
                c.submit("simulate", STORM_SPEC)
                texts[i] = c.last_payload_text
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=tenant, args=(i,))
                   for i in range(STORM_CLIENTS)]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        storm_seconds = time.perf_counter() - t0
        assert not errors, errors
        assert len(set(texts)) == 1  # byte-identical responses, all 50

        storm_stats = client.status()
        storm_executed = storm_stats["executed"] - stats["executed"]
        storm_coalesced = storm_stats["coalesced"] - stats["coalesced"]
        assert storm_executed == 1  # the storm cost ONE simulation
        assert storm_coalesced == STORM_CLIENTS - 1
    finally:
        proc.terminate()
        proc.wait(timeout=60)

    # --- perf-gate reference (always, fixed scale) -----------------------
    from repro.experiments.performance import (
        clear_result_cache,
        run_performance_experiment,
    )
    from repro.experiments.scale import ExperimentScale

    def single_sim(config_name, mapping, commit_target, rounds=5):
        cfg = get_config(config_name)
        traces = [trace_for(b, 6000)
                  for b in ("gzip", "twolf", "bzip2", "mcf")]
        best = None
        cycles = 0
        for _ in range(rounds):
            p = Processor(cfg, traces, mapping, commit_target=commit_target)
            p.warm()
            t0 = time.perf_counter()
            p.run()
            dt = time.perf_counter() - t0
            cycles = p.cycle
            if best is None or dt < best:
                best = dt
        return round(cycles / best)

    gate_scale = ExperimentScale(**SWEEP_SCALE).scaled(GATE_SCALE)
    gate_times = []
    for _ in range(2):
        clear_result_cache()
        clear_trace_cache()
        clear_warm_cache()
        runner = BatchRunner(workers=GATE_WORKERS,
                             trace_store=tmp_path / "gate-store")
        t0 = time.perf_counter()
        run_performance_experiment(SWEEP_CONFIGS, SWEEP_WORKLOADS,
                                   gate_scale, runner=runner,
                                   screening=True)
        gate_times.append(time.perf_counter() - t0)
        assert not runner.report.eventful  # a healthy gate run needs no rescue
        runner.close()
    gate_cps = {
        "2M4+2M2": single_sim("2M4+2M2", (0, 2, 1, 3), GATE_SINGLE_TARGET),
        "M8": single_sim("M8", (0, 0, 0, 0), GATE_SINGLE_TARGET),
    }

    snapshot = {
        "benchmark": "test_service_latency",
        "seed_cycles_per_second": seed_baseline_cycles_per_second(),
        "perf_gate": {
            "scale": GATE_SCALE,
            "workers": GATE_WORKERS,
            # Machine class of the recording host: the gate only enforces
            # against a baseline recorded on the same class (a different
            # class downgrades the run to record-only).
            "machine": (
                f"{platform.system()}-{platform.machine()}"
                f"-cpu{os.cpu_count()}"
            ),
            "single_sim_commit_target": GATE_SINGLE_TARGET,
            "cycles_per_second": gate_cps,
            "sweep_seconds_best": round(min(gate_times), 3),
            "sweep_seconds_all": [round(t, 3) for t in gate_times],
            "note": (
                "fixed-scale same-machine reference for "
                "benchmarks/perf_gate.py; the CI lane fails on >25% "
                "regression of cycles/sec or sweep wall clock vs the "
                "latest committed BENCH_000N baseline — the sweep runs "
                "the local supervised path (no daemon in the loop), so "
                "the gate keeps measuring the engine, not the service"
            ),
        },
        "service": {
            "reference_sweep": {
                "sims": len(REFERENCE_SWEEP["sims"]),
                "commit_target": _SIM["commit_target"],
                "cold_seconds": round(cold_seconds, 4),
                "warm_seconds_best": round(min(warm_times), 4),
                "warm_seconds_mean": round(sum(warm_times) / len(warm_times),
                                           4),
                "warm_requests_per_second": round(warm_rps, 1),
                "warm_requests": WARM_REQUESTS,
                "speedup_cold_over_warm_best": round(
                    cold_seconds / min(warm_times), 1
                ),
                "note": (
                    "unix-socket daemon, connect-per-request client; "
                    "warm = served from the shared sharded ResultCache "
                    "without touching the pool, asserted byte-identical "
                    "to the cold response on every request"
                ),
            },
            "coalescing_storm": {
                "clients": STORM_CLIENTS,
                "commit_target": STORM_SPEC["commit_target"],
                "executed": storm_executed,
                "coalesced": storm_coalesced,
                "wall_seconds": round(storm_seconds, 3),
                "byte_identical_responses": True,
                "note": (
                    "50 concurrent identical cold requests released "
                    "through a barrier: one flight executes, 49 "
                    "subscribers attach and receive the same rendered "
                    "bytes"
                ),
            },
        },
    }

    # Merge, never clobber: other benches may extend this snapshot later.
    merged = {}
    if SERVICE_SNAPSHOT.exists():
        try:
            merged = json.loads(SERVICE_SNAPSHOT.read_text())
        except ValueError:
            merged = {}
    merged.update(snapshot)
    SERVICE_SNAPSHOT.write_text(json.dumps(merged, indent=2) + "\n")
    svc = snapshot["service"]["reference_sweep"]
    print(f"\n[service] cold {svc['cold_seconds']:.3f} s, warm best "
          f"{svc['warm_seconds_best'] * 1000:.1f} ms "
          f"({svc['warm_requests_per_second']:.0f} req/s); storm "
          f"{STORM_CLIENTS} clients -> {storm_executed} execution in "
          f"{storm_seconds:.2f} s [saved to {SERVICE_SNAPSHOT}]")
    print(f"\n[perf-gate ref] sweep best {min(gate_times):.2f} s @scale "
          f"{GATE_SCALE}, single-sim {gate_cps} [saved to "
          f"{SERVICE_SNAPSHOT}]")
    # Catastrophic-regression tripwires (machine-portable): the warm
    # tier must be far cheaper than re-simulating, and the gate-scale
    # engine floors still apply.
    assert min(warm_times) < 0.5 * cold_seconds, (warm_times, cold_seconds)
    seed_cps = merged["seed_cycles_per_second"]
    assert gate_cps["2M4+2M2"] > 0.2 * seed_cps, (gate_cps, seed_cps)
    assert gate_cps["M8"] > 0.2 * seed_cps, (gate_cps, seed_cps)
