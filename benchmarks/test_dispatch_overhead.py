"""Dispatch-overhead micro-benchmark: jobs submitted vs ``max_mappings``.

Not a paper artifact — this pins the *structural* win of the bundled
scheduler: the number of worker jobs a sweep dispatches. Before PR 5 the
exact-mode screen batch grew as ``max_mappings × pairs`` (one SimJob per
candidate mapping); bundling packs the same runs into at most
worker-count jobs, so dispatch/pickle/cache-probe overhead no longer
scales with the candidate count. Screening mode dispatches one ladder
job per screened pair (plus the bundled single runs) at any
``max_mappings``.

Gated behind ``RUN_BENCH=1`` like every benchmark (see conftest). The
job counts merge into ``BENCH_0005.json`` next to the PR 5 throughput
A/B.
"""

import json
import time
from pathlib import Path

from repro.experiments.performance import (
    _execute_plans,
    _plan_pair,
    clear_result_cache,
)
from repro.experiments.scale import ExperimentScale
from repro.runner import BatchRunner
from repro.workloads.definitions import get_workload

_REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT = _REPO_ROOT / "BENCH_0005.json"

#: The candidate-count axis. 24 is the benchmark harness default; the
#: reference experiment scale runs 36.
MAPPING_COUNTS = (4, 8, 16, 24)

#: Small fixed windows: this benchmark measures *scheduling*, not
#: simulation throughput, so the runs themselves are kept cheap and the
#: scale deliberately ignores REPRO_SIM_SCALE.
SCALE_KWARGS = dict(commit_target=800, screen_target=300)

CONFIGS = ("M8", "2M4+2M2")
WORKLOADS = ("2W4", "4W6")

#: Job counts are sized against this reported pool width (the bundling
#: contract: at most `workers` bundle jobs per batch, however many
#: candidate mappings the sweep screens).
REPORTED_WORKERS = 4


class CountingRunner(BatchRunner):
    """Executes every batch inline but records it, while *reporting* a
    multi-worker width so the scheduler sizes bundles as the pool would."""

    def __init__(self, reported_workers: int = REPORTED_WORKERS):
        super().__init__(workers=1, trace_store=False)
        self.workers = reported_workers
        self.batches = []

    def run(self, jobs):
        jobs = list(jobs)
        self.batches.append(jobs)
        return [job.execute(self.cache) for job in jobs]


def _sweep_job_counts(screening: bool, max_mappings: int) -> dict:
    """One cross-pair sweep at ``max_mappings`` candidates: the batches
    dispatched, the runs they carry, and the per-job-scheduler job count
    the bundles replace."""
    clear_result_cache()
    scale = ExperimentScale(max_mappings=max_mappings, **SCALE_KWARGS)
    runner = CountingRunner()
    plans = [
        _plan_pair(cn, get_workload(wn), scale, screening=screening)
        for cn in CONFIGS
        for wn in WORKLOADS
    ]
    t0 = time.perf_counter()
    _execute_plans(plans, scale, runner)
    elapsed = time.perf_counter() - t0
    clear_result_cache()

    counts = {"jobs_per_batch": [len(b) for b in runner.batches]}
    counts["jobs_total"] = sum(counts["jobs_per_batch"])
    # What the per-job scheduler (PR 4 and earlier, exact mode) would
    # have dispatched for the same phase-1 plan: one screen job per
    # candidate mapping of every screened pair, one job per
    # single-mapping pair.
    counts["per_run_phase1_jobs"] = sum(
        len(p.candidates) if p.candidates is not None else 1
        for p in plans
        if p.screen_job is None
    ) + sum(1 for p in plans if p.screen_job is not None)
    counts["phase1_jobs"] = counts["jobs_per_batch"][0]
    counts["seconds_inline"] = round(elapsed, 3)
    return counts


def test_dispatch_overhead_job_counts(artifact):
    """Exact-mode screen dispatch must stay ~``workers`` jobs at every
    ``max_mappings`` while the per-run scheduler's count grows linearly;
    the measured counts are recorded in BENCH_0005.json."""
    rows = []
    results = {"exact": {}, "screening": {}}
    for mode, screening in (("exact", False), ("screening", True)):
        for mm in MAPPING_COUNTS:
            counts = _sweep_job_counts(screening, mm)
            results[mode][mm] = counts
            rows.append(
                f"{mode:10s} max_mappings={mm:3d} "
                f"phase1_jobs={counts['phase1_jobs']:3d} "
                f"(per-run scheduler: {counts['per_run_phase1_jobs']:3d}) "
                f"total={counts['jobs_total']:3d}"
            )

    exact = results["exact"]
    # The bundling contract: exact-mode phase 1 is at most `workers`
    # bundle jobs, independent of the candidate count...
    for mm, counts in exact.items():
        assert counts["phase1_jobs"] <= REPORTED_WORKERS, (mm, counts)
    # ...while the per-run scheduler's job count grows with it.
    assert (
        exact[MAPPING_COUNTS[-1]]["per_run_phase1_jobs"]
        > exact[MAPPING_COUNTS[0]]["per_run_phase1_jobs"]
        >= exact[MAPPING_COUNTS[0]]["phase1_jobs"]
    )
    # Screening mode keeps one ladder per screened pair regardless of
    # max_mappings: the batch size must not grow with the candidate
    # count either.
    screen_sizes = {
        counts["phase1_jobs"] for counts in results["screening"].values()
    }
    assert len(screen_sizes) == 1

    payload = {
        "benchmark": "test_dispatch_overhead_job_counts",
        "configs": list(CONFIGS),
        "workloads": list(WORKLOADS),
        "reported_workers": REPORTED_WORKERS,
        "scale": SCALE_KWARGS,
        "note": (
            "worker jobs dispatched per sweep batch vs max_mappings; "
            "phase1 covers the screen batch (exact mode: bundled "
            "candidate screens + single runs; screening mode: one "
            "ladder per pair + bundled single runs), per_run_phase1_jobs "
            "is what the pre-bundling scheduler dispatched"
        ),
        "modes": {
            mode: {str(mm): counts for mm, counts in per_mode.items()}
            for mode, per_mode in results.items()
        },
    }
    merged = {}
    if SNAPSHOT.exists():
        try:
            merged = json.loads(SNAPSHOT.read_text())
        except ValueError:
            merged = {}
    merged["dispatch_overhead"] = payload
    SNAPSHOT.write_text(json.dumps(merged, indent=2) + "\n")
    artifact("dispatch_overhead", "\n".join(rows))
