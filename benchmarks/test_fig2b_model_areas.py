"""E2 — Fig. 2(b): per-model area estimation, stacked by stage."""

from repro.area.model import pipeline_model_area, stage_breakdown
from repro.area.structures import STAGE_NAMES
from repro.metrics.tables import format_table


def fig2b_text() -> str:
    rows = []
    for name in ("M8", "M6", "M4", "M2"):
        bd = stage_breakdown(name)
        rows.append(
            [name]
            + [f"{bd[s]:.1f}" for s in STAGE_NAMES]
            + [f"{pipeline_model_area(name):.1f}"]
        )
    return format_table(
        ["model"] + list(STAGE_NAMES) + ["total_mm2"],
        rows,
        title="Fig. 2(b) — area estimation per pipeline model (mm2 @ 0.18um)",
    )


def test_fig2b_model_areas(benchmark, artifact):
    text = benchmark.pedantic(fig2b_text, rounds=1, iterations=1)
    artifact("fig2b_model_areas", text)
    # Shape facts from the paper's chart: M8 tallest (~165 mm2), EX core
    # the dominant segment, M6/M4/M2 fetch stages 20% over M8's.
    assert pipeline_model_area("M8") > pipeline_model_area("M6")
    bd8 = stage_breakdown("M8")
    assert bd8["EX"] == max(v for k, v in bd8.items() if k != "IF" or True)
