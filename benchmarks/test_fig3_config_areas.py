"""E3 — Fig. 3: area of the six evaluated microarchitectures."""

from repro.area.model import area_report, config_area
from repro.core.config import STANDARD_CONFIG_NAMES


def test_fig3_config_areas(benchmark, artifact):
    text = benchmark.pedantic(
        area_report, args=(STANDARD_CONFIG_NAMES,), rounds=1, iterations=1
    )
    artifact("fig3_config_areas", text)
    # Paper's annotations.
    base = config_area("M8")
    assert abs((config_area("3M4") - base) / base * 100 - (-17.0)) < 1.5
    assert abs((config_area("4M4") - base) / base * 100 - (+10.14)) < 1.5
    assert abs((config_area("2M4+2M2") - base) / base * 100 - (-27.0)) < 1.5
