"""Shared fixtures for the figure/table regeneration harness.

Every bench writes its regenerated artifact both to stdout and to
``benchmarks/output/<name>.txt``; EXPERIMENTS.md records the outputs of a
full run next to the paper's numbers.

Scale: `REPRO_SIM_SCALE` (float) multiplies the simulation windows; the
default is sized so the full harness regenerates every figure in minutes
on a laptop. The Fig. 4 / Fig. 5 / headline benches share one sweep via a
session-scoped cache.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.performance import run_performance_experiment
from repro.experiments.scale import ExperimentScale

OUTPUT_DIR = Path(__file__).parent / "output"


def bench_scale() -> ExperimentScale:
    base = ExperimentScale(commit_target=6000, screen_target=1200, max_mappings=24)
    factor = os.environ.get("REPRO_SIM_SCALE")
    if factor:
        base = base.scaled(float(factor))
    return base


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return bench_scale()


@pytest.fixture(scope="session")
def sweep(scale):
    """The full Figs. 4/5 sweep: every configuration x every workload."""
    return run_performance_experiment(scale=scale, progress=True)


@pytest.fixture()
def artifact():
    """Writer: artifact('fig4_ilp', text) -> prints + saves the artifact."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return write
