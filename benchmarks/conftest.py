"""Shared fixtures for the figure/table regeneration harness.

Every bench writes its regenerated artifact both to stdout and to
``benchmarks/output/<name>.txt``; EXPERIMENTS.md records the outputs of a
full run next to the paper's numbers.

The harness is **opt-in** (tier-1 `pytest` collects only ``tests/``, see
pyproject.toml): every item here carries the ``bench`` marker and is
skipped unless ``RUN_BENCH=1`` is set — ``make bench`` does both, or run
``RUN_BENCH=1 pytest benchmarks -q`` directly.

Scale: `REPRO_SIM_SCALE` (float) multiplies the simulation windows; the
default is sized so the full harness regenerates every figure in minutes
on a laptop. The Fig. 4 / Fig. 5 / headline benches share one sweep via a
session-scoped cache. `REPRO_WORKERS` sizes the BatchRunner pool that
fans the oracle mapping screens out over processes.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.performance import run_performance_experiment
from repro.experiments.scale import ExperimentScale

OUTPUT_DIR = Path(__file__).parent / "output"


def pytest_collection_modifyitems(config, items):
    """Mark every benchmark `bench` and gate it behind RUN_BENCH=1."""
    bench = pytest.mark.bench
    enabled = bool(os.environ.get("RUN_BENCH"))
    skip = pytest.mark.skip(
        reason="benchmarks are opt-in: run via `make bench` or RUN_BENCH=1"
    )
    for item in items:
        item.add_marker(bench)
        if not enabled:
            item.add_marker(skip)


def bench_scale() -> ExperimentScale:
    base = ExperimentScale(commit_target=6000, screen_target=1200, max_mappings=24)
    factor = os.environ.get("REPRO_SIM_SCALE")
    if factor:
        base = base.scaled(float(factor))
    return base


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return bench_scale()


@pytest.fixture(scope="session")
def sweep(scale):
    """The full Figs. 4/5 sweep: every configuration x every workload."""
    return run_performance_experiment(scale=scale, progress=True)


@pytest.fixture()
def artifact():
    """Writer: artifact('fig4_ilp', text) -> prints + saves the artifact."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return write
