"""E7 — Fig. 5: performance-per-area comparison (IPC/mm²).

Same sweep as Fig. 4 divided by the Fig. 3 configuration areas.
"""

from repro.experiments.performance import fig5_table
from repro.experiments.summary import headline_summary


def test_fig5_perf_per_area(benchmark, artifact, sweep):
    def render():
        return "\n\n".join(fig5_table(sweep, cls) for cls in ("ILP", "MEM", "MIX"))

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    artifact("fig5_perf_per_area", text)

    # Paper shape: hdSMT wins complexity-effectiveness.
    s = headline_summary(sweep)
    assert s.ppa_gain_vs_monolithic > 0, "hdSMT must beat M8 on IPC/mm2 (paper: +13%)"
    assert s.best_ppa_hdsmt == "2M4+2M2", (
        "the paper's best performance-per-area design is 2M4+2M2, "
        f"measured {s.best_ppa_hdsmt}"
    )
