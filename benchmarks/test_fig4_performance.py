"""E6 — Fig. 4: raw-performance comparison (IPC).

Regenerates Fig. 4(a/b/c): for every workload class, the harmonic-mean
IPC per workload size and microarchitecture under the BEST / HEUR / WORST
mapping policies.
"""

from repro.experiments.performance import fig4_table
from repro.experiments.summary import headline_summary


def test_fig4_performance(benchmark, artifact, sweep):
    def render():
        return "\n\n".join(fig4_table(sweep, cls) for cls in ("ILP", "MEM", "MIX"))

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    artifact("fig4_performance", text)

    # Paper shape: the monolithic baseline keeps a raw-IPC edge overall.
    s = headline_summary(sweep)
    assert s.ipc_gain_monolithic_vs_hdsmt > -0.05, (
        "M8 should be at least on par with hdSMT on raw IPC "
        f"(measured hdSMT edge {-s.ipc_gain_monolithic_vs_hdsmt:+.1%})"
    )
    # BEST >= HEUR >= WORST everywhere.
    for per in sweep.values():
        for wr in per.values():
            assert wr.best.ipc >= wr.heur.ipc >= wr.worst.ipc
