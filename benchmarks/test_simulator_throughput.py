"""Micro-benchmarks: simulator and substrate throughput.

Not a paper artifact — these track the cost of the hot paths (the
profiling-first discipline of the HPC guides: measure before and after
touching the simulator loops). ``test_simulator_cycles_per_second``
additionally snapshots its result to ``BENCH_0001.json`` at the repo
root, next to the recorded seed-engine baseline, so the throughput
trajectory is tracked across PRs.
"""

import json
from pathlib import Path

from repro.branch.perceptron import PerceptronPredictor
from repro.core.config import get_config
from repro.core.processor import Processor
from repro.memory.cache import SetAssociativeCache
from repro.trace.stream import trace_for

#: Seed-engine throughput on this benchmark (best of 3 construct+warm+run
#: rounds, measured on the same machine before the timing-wheel /
#: idle-skip / warm-cache engine landed). The snapshot below compares
#: the current engine against it.
SEED_CYCLES_PER_SECOND = 26_462
BENCH_SNAPSHOT = Path(__file__).resolve().parent.parent / "BENCH_0001.json"


def test_cache_access_throughput(benchmark):
    c = SetAssociativeCache(64 * 1024, 2, 64, 8, name="bench")
    addrs = [(i * 2654435761) % (1 << 24) for i in range(4096)]

    def run():
        access = c.access
        for a in addrs:
            access(a)

    benchmark(run)


def test_perceptron_throughput(benchmark):
    p = PerceptronPredictor()
    pcs = [(0x40_0000 + 4 * i) for i in range(512)]

    def run():
        for pc in pcs:
            taken = p.predict(0, pc)
            p.update(0, pc, not taken)

    benchmark(run)


def test_trace_generation_throughput(benchmark):
    from repro.trace.benchmarks import get_benchmark
    from repro.trace.synthetic import StaticProgram, TraceGenerator

    prog = StaticProgram(get_benchmark("gcc"), seed=0)

    def run():
        TraceGenerator(prog, seed=1).generate(5_000)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_simulator_cycles_per_second(benchmark):
    """End-to-end simulation speed on a 4-thread hdSMT configuration.

    Writes a ``BENCH_0001.json`` perf snapshot (cycles/sec now vs the
    recorded seed engine) so the trajectory survives across PRs. Five
    rounds: the first pays the cold trace warm-up, the rest measure the
    steady state an experiment sweep actually runs in.
    """
    cfg = get_config("2M4+2M2")
    traces = [trace_for(b, 6000) for b in ("gzip", "twolf", "bzip2", "mcf")]

    def run():
        proc = Processor(cfg, traces, (0, 2, 1, 3), commit_target=3000)
        proc.warm()
        proc.run()
        return proc.cycle

    cycles = benchmark.pedantic(run, rounds=5, iterations=1)
    assert cycles > 0

    stats = benchmark.stats.stats  # pytest-benchmark's Stats object
    best = cycles / stats.min
    mean = cycles / stats.mean
    snapshot = {
        "benchmark": "test_simulator_cycles_per_second",
        "scenario": {
            "config": "2M4+2M2",
            "benchmarks": ["gzip", "twolf", "bzip2", "mcf"],
            "mapping": [0, 2, 1, 3],
            "commit_target": 3000,
            "trace_length": 6000,
        },
        "cycles": cycles,
        "seconds_min": stats.min,
        "seconds_mean": stats.mean,
        "cycles_per_second_best": round(best),
        "cycles_per_second_mean": round(mean),
        "seed_cycles_per_second": SEED_CYCLES_PER_SECOND,
        "speedup_vs_seed_best": round(best / SEED_CYCLES_PER_SECOND, 3),
        "speedup_vs_seed_mean": round(mean / SEED_CYCLES_PER_SECOND, 3),
    }
    BENCH_SNAPSHOT.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"\n[simulator throughput] best {best:,.0f} cycles/s, "
          f"{best / SEED_CYCLES_PER_SECOND:.2f}x the seed engine "
          f"[saved to {BENCH_SNAPSHOT}]")
