"""Micro-benchmarks: simulator, substrate and sweep throughput.

Not a paper artifact — these track the cost of the hot paths (the
profiling-first discipline of the HPC guides: measure before and after
touching the simulator loops).

Snapshots compose across PRs: ``test_simulator_cycles_per_second``
refreshes ``BENCH_0001.json`` (single-simulation throughput vs the seed
engine, whose baseline is read from the latest snapshot on disk rather
than hardcoded) and ``test_sweep_throughput`` writes ``BENCH_0002.json``
(whole-sweep wall clock vs the recorded PR 1 state, plus a per-stage
breakdown). Future perf PRs should append ``BENCH_000N.json`` rather
than overwrite.
"""

import json
import os
import platform
import time
from pathlib import Path

from repro.branch.perceptron import PerceptronPredictor
from repro.core.config import get_config
from repro.core.processor import Processor, clear_warm_cache
from repro.memory.cache import SetAssociativeCache
from repro.trace.stream import clear_trace_cache, trace_for

_REPO_ROOT = Path(__file__).resolve().parent.parent

#: Seed-engine throughput on the single-simulation benchmark, measured
#: before the timing-wheel / idle-skip / warm-cache engine landed. Used
#: only as the fallback when no BENCH snapshot records a baseline.
_FALLBACK_SEED_CYCLES_PER_SECOND = 26_462

BENCH_SNAPSHOT = _REPO_ROOT / "BENCH_0001.json"
SWEEP_SNAPSHOT = _REPO_ROOT / "BENCH_0002.json"
ENGINE_SNAPSHOT = _REPO_ROOT / "BENCH_0003.json"
CONTINUATION_SNAPSHOT = _REPO_ROOT / "BENCH_0004.json"
ENGINE_PKG_SNAPSHOT = _REPO_ROOT / "BENCH_0005.json"

#: PR 1 state (commit dc04876) on the reference performance sweep below:
#: best of 2 cold runs, 4 workers, measured on the development machine at
#: PR 2 time (runs: 23.607 s / 23.725 s).
PR1_SWEEP_SECONDS = 23.607

#: PR 2 state (commit 480cb87), re-measured on the development machine at
#: PR 3 time with interleaved A/B runs (the box drifts; same-session
#: numbers are the only fair baseline): single-simulation cycles/sec
#: (best of 4 cold processes) and the reference screening sweep (best of
#: 4 runs, 4 workers; BENCH_0002 recorded 11.613 s on a faster day).
PR2_SINGLE_SIM_CPS = {"2M4+2M2": 56_867, "M8": 41_588}
PR2_SWEEP_SECONDS = 11.94

#: PR 3 state (commit 1bd171b) on this machine, from the committed
#: BENCH_0003.json: single-simulation cycles/sec (best of 5) and the
#: reference screening sweep (best of 2 cold runs, 4 workers).
PR3_SINGLE_SIM_CPS = {"2M4+2M2": 56819, "M8": 40981}
PR3_SWEEP_SECONDS = 10.77

#: PR 4 state (commit d386c97) from the committed BENCH_0004.json,
#: recorded on the PR 4 development machine (interleaved same-session
#: A/B): single-sim cycles/sec, the screening reference sweep and the
#: exact-mode sweep (where the continuation bundles replace the whole
#: full-length tail). The PR 5 snapshot re-measures all three on *this*
#: machine with a fresh same-session A/B against the PR 4 source tree
#: (see BENCH_0005.json's ``pr4_code_same_session`` section).
PR4_SINGLE_SIM_CPS = {"2M4+2M2": 57_979, "M8": 42_058}
PR4_SWEEP_SECONDS = 10.76
PR4_EXACT_SWEEP_SECONDS = 18.65

#: The reference performance sweep: three standard configurations over a
#: class-and-size spread of workloads at the paper's default experiment
#: scale (commit 8000 / screen 1500 / 36 mappings).
SWEEP_CONFIGS = ("M8", "2M4+2M2", "1M6+2M4+2M2")
SWEEP_WORKLOADS = ("2W4", "4W6", "4W8", "6W4")
SWEEP_SCALE = dict(commit_target=8000, screen_target=1500, max_mappings=36)
SWEEP_WORKERS = 4

#: The perf-gate reference: the same sweep at a *fixed* 0.1 window scale
#: with 2 workers — small enough for a CI lane, and recorded in every
#: BENCH_0004 snapshot so `benchmarks/perf_gate.py` always compares
#: same-scale, same-shape numbers against the committed baseline.
GATE_SCALE = 0.1
GATE_WORKERS = 2
#: The gate's single-sim window is *not* scaled down to GATE_SCALE: a
#: 300-commit run finishes in ~15 ms, where run-to-run noise on a busy
#: host reaches the tripwire threshold. 1500 commits (~100 ms) keeps the
#: gate lane fast while the best-of-5 rate stays stable to a few percent.
GATE_SINGLE_TARGET = 1500


def _snapshot_number(path: Path) -> int:
    """Numeric suffix of BENCH_000N.json (numeric, not lexicographic, so
    BENCH_0010 outranks BENCH_0002)."""
    digits = path.stem.split("_")[-1]
    return int(digits) if digits.isdigit() else -1


def seed_baseline_cycles_per_second() -> int:
    """The seed engine's cycles/second, read from the newest BENCH
    snapshot that records it — so snapshots compose across PRs instead of
    each PR hardcoding the number."""
    for path in sorted(_REPO_ROOT.glob("BENCH_0*.json"),
                       key=_snapshot_number, reverse=True):
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        value = payload.get("seed_cycles_per_second")
        if isinstance(value, (int, float)) and value > 0:
            return int(value)
    return _FALLBACK_SEED_CYCLES_PER_SECOND


def test_cache_access_throughput(benchmark):
    c = SetAssociativeCache(64 * 1024, 2, 64, 8, name="bench")
    addrs = [(i * 2654435761) % (1 << 24) for i in range(4096)]

    def run():
        access = c.access
        for a in addrs:
            access(a)

    benchmark(run)


def test_perceptron_throughput(benchmark):
    p = PerceptronPredictor()
    pcs = [(0x40_0000 + 4 * i) for i in range(512)]

    def run():
        for pc in pcs:
            taken = p.predict(0, pc)
            p.update(0, pc, not taken)

    benchmark(run)


def test_trace_generation_throughput(benchmark):
    from repro.trace.benchmarks import get_benchmark
    from repro.trace.synthetic import StaticProgram, TraceGenerator

    prog = StaticProgram(get_benchmark("gcc"), seed=0)

    def run():
        TraceGenerator(prog, seed=1).generate(5_000)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_packed_trace_load_throughput(benchmark, tmp_path):
    """Store round trip: mmap-load + full materialization of a packed
    trace (the cost a cold worker pays instead of regeneration)."""
    from repro.trace.packed import PackedTrace, PackedTraceStore

    trace = trace_for("gcc", 6000)
    store = PackedTraceStore(tmp_path)
    store.save(PackedTrace.from_trace(trace), "gcc", 6000, 0)

    def run():
        packed = store.load("gcc", 6000, 0, len(trace.junk))
        return packed.materialize_entries()

    assert benchmark(run) == trace.entries


def test_simulator_cycles_per_second(benchmark):
    """End-to-end simulation speed on a 4-thread hdSMT configuration.

    Refreshes the ``BENCH_0001.json`` perf snapshot (cycles/sec now vs
    the seed engine) so the trajectory survives across PRs. Five rounds:
    the first pays the cold trace warm-up, the rest measure the steady
    state an experiment sweep actually runs in.
    """
    cfg = get_config("2M4+2M2")
    traces = [trace_for(b, 6000) for b in ("gzip", "twolf", "bzip2", "mcf")]
    seed_cps = seed_baseline_cycles_per_second()

    def run():
        proc = Processor(cfg, traces, (0, 2, 1, 3), commit_target=3000)
        proc.warm()
        proc.run()
        return proc.cycle

    cycles = benchmark.pedantic(run, rounds=5, iterations=1)
    assert cycles > 0

    stats = benchmark.stats.stats  # pytest-benchmark's Stats object
    best = cycles / stats.min
    mean = cycles / stats.mean
    snapshot = {
        "benchmark": "test_simulator_cycles_per_second",
        "scenario": {
            "config": "2M4+2M2",
            "benchmarks": ["gzip", "twolf", "bzip2", "mcf"],
            "mapping": [0, 2, 1, 3],
            "commit_target": 3000,
            "trace_length": 6000,
        },
        "cycles": cycles,
        "seconds_min": stats.min,
        "seconds_mean": stats.mean,
        "cycles_per_second_best": round(best),
        "cycles_per_second_mean": round(mean),
        "seed_cycles_per_second": seed_cps,
        "speedup_vs_seed_best": round(best / seed_cps, 3),
        "speedup_vs_seed_mean": round(mean / seed_cps, 3),
    }
    BENCH_SNAPSHOT.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"\n[simulator throughput] best {best:,.0f} cycles/s, "
          f"{best / seed_cps:.2f}x the seed engine "
          f"[saved to {BENCH_SNAPSHOT}]")


def test_engine_and_screening_throughput(tmp_path, monkeypatch):
    """PR 3 snapshot (``BENCH_0003.json``): the combined effect of the
    column-backed fetch engine, the specialized monolithic (M8) pipeline
    path and marginal-IPC screening.

    Records single-simulation cycles/sec on the hdSMT reference scenario
    *and* the monolithic M8 baseline (the specialized path), plus the
    reference sweep wall clock under ``--screening``, against the PR 2
    numbers recorded above. The hard guarantees of this PR are exactness
    (differential fetch goldens, screening-equivalence contract) and
    strictly less screening work (the marginal ladder keeps 0.35 of each
    round against PR 2's 0.5 — ~16% fewer screen cycles on the validated
    10-pair spread); single-sim throughput is required not to regress
    beyond noise."""
    from repro.experiments.performance import (
        clear_result_cache,
        run_performance_experiment,
    )
    from repro.experiments.scale import ExperimentScale
    from repro.runner import BatchRunner

    monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
    monkeypatch.delenv("REPRO_WORKERS", raising=False)

    def single_sim(config_name, mapping, rounds=5):
        cfg = get_config(config_name)
        traces = [trace_for(b, 6000) for b in ("gzip", "twolf", "bzip2", "mcf")]
        best = None
        cycles = 0
        for _ in range(rounds):
            proc = Processor(cfg, traces, mapping, commit_target=3000)
            proc.warm()
            t0 = time.perf_counter()
            proc.run()
            dt = time.perf_counter() - t0
            cycles = proc.cycle
            if best is None or dt < best:
                best = dt
        return round(cycles / best)

    hdsmt_cps = single_sim("2M4+2M2", (0, 2, 1, 3))
    m8_cps = single_sim("M8", (0, 0, 0, 0))

    scale = ExperimentScale(**SWEEP_SCALE)
    sweep_times = []
    for _ in range(2):
        clear_result_cache()
        clear_trace_cache()
        clear_warm_cache()
        runner = BatchRunner(workers=SWEEP_WORKERS,
                             trace_store=tmp_path / "trace-store")
        t0 = time.perf_counter()
        run_performance_experiment(SWEEP_CONFIGS, SWEEP_WORKLOADS, scale,
                                   runner=runner, screening=True)
        sweep_times.append(time.perf_counter() - t0)
        runner.close()
    sweep_best = min(sweep_times)

    snapshot = {
        "benchmark": "test_engine_and_screening_throughput",
        "seed_cycles_per_second": seed_baseline_cycles_per_second(),
        "single_sim": {
            "scenario": {
                "benchmarks": ["gzip", "twolf", "bzip2", "mcf"],
                "commit_target": 3000,
                "trace_length": 6000,
            },
            "pr2_cycles_per_second": PR2_SINGLE_SIM_CPS,
            "cycles_per_second": {"2M4+2M2": hdsmt_cps, "M8": m8_cps},
        },
        "reference_sweep": {
            "configs": list(SWEEP_CONFIGS),
            "workloads": list(SWEEP_WORKLOADS),
            "scale": SWEEP_SCALE,
            "workers": SWEEP_WORKERS,
            "screening": True,
            "pr2_recorded_seconds": PR2_SWEEP_SECONDS,
            "seconds_best": round(sweep_best, 3),
            "seconds_all": [round(t, 3) for t in sweep_times],
            "speedup_vs_pr2_recorded": round(PR2_SWEEP_SECONDS / sweep_best, 3),
        },
        "screen_work_note": (
            "marginal-IPC ladder (keep 0.35, top_fraction 0.67) runs "
            "~16% fewer screen cycles than PR 2's cumulative keep-0.5 "
            "ladder on the validated 10-pair spread, with identical "
            "reference-scenario selection "
            "(tests/experiments/test_screening_equivalence.py)"
        ),
    }
    ENGINE_SNAPSHOT.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"\n[engine+screening] single-sim {hdsmt_cps:,}/s (hdSMT) "
          f"{m8_cps:,}/s (M8); sweep best {sweep_best:.2f} s vs PR2 "
          f"{PR2_SWEEP_SECONDS:.2f} s [saved to {ENGINE_SNAPSHOT}]")
    # Catastrophic-regression tripwire: same-machine PR-over-PR drift is
    # judged from the committed BENCH_000N snapshots (boxes differ and
    # drift), but an engine-breaking regression — e.g. the fetch block
    # cache disabled so every packet re-decodes — costs 5-10x and must
    # fail even on hardware several times slower than the recorded dev
    # machine. The seed engine measured ~26.5k cycles/s; require at
    # least ~30% of that.
    seed_cps = snapshot["seed_cycles_per_second"]
    assert hdsmt_cps > 0.3 * seed_cps, (hdsmt_cps, seed_cps)
    assert m8_cps > 0.3 * seed_cps, (m8_cps, seed_cps)


def test_continuation_sweep_throughput(tmp_path, monkeypatch):
    """PR 4 snapshot (``BENCH_0004.json``): the combined effect of the
    merged-ready issue stage and the batched full-length continuation
    scheduler.

    Always records a **perf-gate reference**: the reference sweep and
    single-simulation throughput at a fixed small scale (``GATE_SCALE``,
    ``GATE_WORKERS``) — cheap enough for a CI lane, and same-shape across
    snapshots so ``benchmarks/perf_gate.py`` can compare a fresh run
    against the committed baseline without cross-scale normalization.

    At full window scale (``REPRO_SIM_SCALE`` unset or >= 1) it
    additionally re-measures the PR 3 reference numbers on this machine:
    single-sim cycles/sec for the hdSMT and M8 scenarios, the screening
    reference sweep (the acceptance bar: best wall clock <= BENCH_0003's
    recorded best) and one exact-mode sweep — where the continuation
    bundles replace the per-run job tail entirely.
    """
    from repro.experiments.performance import (
        clear_result_cache,
        run_performance_experiment,
    )
    from repro.experiments.scale import ExperimentScale
    from repro.runner import BatchRunner

    monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    env_scale = float(os.environ.get("REPRO_SIM_SCALE") or 1)
    full_windows = env_scale >= 1

    def single_sim(config_name, mapping, commit_target, rounds=5):
        cfg = get_config(config_name)
        traces = [trace_for(b, 6000) for b in ("gzip", "twolf", "bzip2", "mcf")]
        best = None
        cycles = 0
        for _ in range(rounds):
            proc = Processor(cfg, traces, mapping, commit_target=commit_target)
            proc.warm()
            t0 = time.perf_counter()
            proc.run()
            dt = time.perf_counter() - t0
            cycles = proc.cycle
            if best is None or dt < best:
                best = dt
        return round(cycles / best)

    def sweep(scale, workers, screening, repeats, store_dir):
        times = []
        for _ in range(repeats):
            clear_result_cache()
            clear_trace_cache()
            clear_warm_cache()
            runner = BatchRunner(workers=workers, trace_store=store_dir)
            t0 = time.perf_counter()
            run_performance_experiment(SWEEP_CONFIGS, SWEEP_WORKLOADS, scale,
                                       runner=runner, screening=screening)
            times.append(time.perf_counter() - t0)
            runner.close()
        return times

    # --- perf-gate reference (always, fixed scale) -----------------------
    gate_scale = ExperimentScale(**SWEEP_SCALE).scaled(GATE_SCALE)
    gate_times = sweep(gate_scale, GATE_WORKERS, screening=True, repeats=2,
                       store_dir=tmp_path / "gate-store")
    gate_cps = {
        "2M4+2M2": single_sim("2M4+2M2", (0, 2, 1, 3), GATE_SINGLE_TARGET),
        "M8": single_sim("M8", (0, 0, 0, 0), GATE_SINGLE_TARGET),
    }
    snapshot = {
        "benchmark": "test_continuation_sweep_throughput",
        "seed_cycles_per_second": seed_baseline_cycles_per_second(),
        "perf_gate": {
            "scale": GATE_SCALE,
            "workers": GATE_WORKERS,
            # Machine class of the recording host: the gate only enforces
            # against a baseline recorded on the same class (a different
            # class downgrades the run to record-only — cross-machine
            # absolute numbers are not comparable).
            "machine": (
                f"{platform.system()}-{platform.machine()}"
                f"-cpu{os.cpu_count()}"
            ),
            "single_sim_commit_target": GATE_SINGLE_TARGET,
            "cycles_per_second": gate_cps,
            "sweep_seconds_best": round(min(gate_times), 3),
            "sweep_seconds_all": [round(t, 3) for t in gate_times],
            "note": (
                "fixed-scale same-machine reference for "
                "benchmarks/perf_gate.py; the CI lane fails on >25% "
                "regression of cycles/sec or sweep wall clock vs the "
                "latest committed BENCH_000N baseline"
            ),
        },
    }

    # --- full-scale PR-over-PR measurements ------------------------------
    if full_windows:
        hdsmt_cps = single_sim("2M4+2M2", (0, 2, 1, 3), 3000)
        m8_cps = single_sim("M8", (0, 0, 0, 0), 3000)
        scale = ExperimentScale(**SWEEP_SCALE)
        screening_times = sweep(scale, SWEEP_WORKERS, screening=True,
                                repeats=2, store_dir=tmp_path / "trace-store")
        exact_times = sweep(scale, SWEEP_WORKERS, screening=False, repeats=1,
                            store_dir=tmp_path / "trace-store")
        sweep_best = min(screening_times)
        snapshot["single_sim"] = {
            "scenario": {
                "benchmarks": ["gzip", "twolf", "bzip2", "mcf"],
                "commit_target": 3000,
                "trace_length": 6000,
            },
            "pr3_cycles_per_second": PR3_SINGLE_SIM_CPS,
            "cycles_per_second": {"2M4+2M2": hdsmt_cps, "M8": m8_cps},
        }
        snapshot["reference_sweep"] = {
            "configs": list(SWEEP_CONFIGS),
            "workloads": list(SWEEP_WORKLOADS),
            "scale": SWEEP_SCALE,
            "workers": SWEEP_WORKERS,
            "screening": True,
            "pr3_recorded_seconds": PR3_SWEEP_SECONDS,
            "seconds_best": round(sweep_best, 3),
            "seconds_all": [round(t, 3) for t in screening_times],
            "speedup_vs_pr3_recorded": round(PR3_SWEEP_SECONDS / sweep_best, 3),
        }
        snapshot["exact_sweep"] = {
            "screening": False,
            "seconds": round(exact_times[0], 3),
            "note": (
                "exact mode is where the continuation scheduler replaces "
                "the whole full-length tail (screening mode folds "
                "best/worst/heur into the ladders; only the monolithic "
                "pairs' runs ride in bundles)"
            ),
        }
        print(f"\n[continuation] single-sim {hdsmt_cps:,}/s (hdSMT) "
              f"{m8_cps:,}/s (M8); screening sweep best {sweep_best:.2f} s "
              f"vs PR3 {PR3_SWEEP_SECONDS:.2f} s; exact "
              f"{exact_times[0]:.2f} s [saved to {CONTINUATION_SNAPSHOT}]")

    if not full_windows and CONTINUATION_SNAPSHOT.exists():
        # Gate-scale runs refresh only the gate reference: merge into the
        # existing snapshot so the committed full-scale record
        # (single_sim / reference_sweep / exact_sweep) survives a local
        # `make perf-gate`.
        try:
            merged = json.loads(CONTINUATION_SNAPSHOT.read_text())
        except ValueError:
            merged = {}
        merged.update(snapshot)
        snapshot = merged
    CONTINUATION_SNAPSHOT.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"\n[perf-gate ref] sweep best {min(gate_times):.2f} s @scale "
          f"{GATE_SCALE}, single-sim {gate_cps} [saved to "
          f"{CONTINUATION_SNAPSHOT}]")
    # Catastrophic-regression tripwires (machine-portable; see the PR 3
    # test above for the rationale). The gate-scale rate amortizes less
    # start-up, so its floor is looser.
    seed_cps = snapshot["seed_cycles_per_second"]
    assert gate_cps["2M4+2M2"] > 0.2 * seed_cps, (gate_cps, seed_cps)
    assert gate_cps["M8"] > 0.2 * seed_cps, (gate_cps, seed_cps)


def test_engine_package_throughput(tmp_path, monkeypatch):
    """PR 5 snapshot (``BENCH_0005.json``): the decomposed engine package
    (``core/engine/`` + registry-composed stages), the unified runner job
    protocol and the bundled exact-mode screens.

    The PR's hard guarantees are exactness (shim test, registry lockstep
    suite, golden equivalence) and the structural dispatch win (exact
    screens in at most ``workers`` bundle jobs — see
    ``test_dispatch_overhead.py``); throughput is required not to regress
    beyond noise, since the refactor moves code but neither adds nor
    removes per-cycle work.

    Always records the **perf-gate reference** (fixed ``GATE_SCALE``,
    same shape as BENCH_0004's — ``benchmarks/perf_gate.py`` now treats
    this snapshot as the fresh gate source). At full window scale it
    additionally re-measures PR 4's reference numbers on this machine:
    single-sim cycles/sec, the screening reference sweep and the
    exact-mode sweep (whose screens now dispatch as bundles). Sections
    written by other benches (``dispatch_overhead``) or recorded
    manually (``pr4_code_same_session``) are preserved — the snapshot is
    merged, never clobbered.
    """
    from repro.experiments.performance import (
        clear_result_cache,
        run_performance_experiment,
    )
    from repro.experiments.scale import ExperimentScale
    from repro.runner import BatchRunner

    monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    env_scale = float(os.environ.get("REPRO_SIM_SCALE") or 1)
    full_windows = env_scale >= 1

    def single_sim(config_name, mapping, commit_target, rounds=5):
        cfg = get_config(config_name)
        traces = [trace_for(b, 6000) for b in ("gzip", "twolf", "bzip2", "mcf")]
        best = None
        cycles = 0
        for _ in range(rounds):
            proc = Processor(cfg, traces, mapping, commit_target=commit_target)
            proc.warm()
            t0 = time.perf_counter()
            proc.run()
            dt = time.perf_counter() - t0
            cycles = proc.cycle
            if best is None or dt < best:
                best = dt
        return round(cycles / best)

    def sweep(scale, workers, screening, repeats, store_dir):
        times = []
        jobs = []
        for _ in range(repeats):
            clear_result_cache()
            clear_trace_cache()
            clear_warm_cache()
            runner = BatchRunner(workers=workers, trace_store=store_dir)
            t0 = time.perf_counter()
            run_performance_experiment(SWEEP_CONFIGS, SWEEP_WORKLOADS, scale,
                                       runner=runner, screening=screening)
            times.append(time.perf_counter() - t0)
            jobs.append(runner.jobs_run)
            runner.close()
        return times, jobs

    # --- perf-gate reference (always, fixed scale) -----------------------
    gate_scale = ExperimentScale(**SWEEP_SCALE).scaled(GATE_SCALE)
    gate_times, _ = sweep(gate_scale, GATE_WORKERS, screening=True, repeats=2,
                          store_dir=tmp_path / "gate-store")
    gate_cps = {
        "2M4+2M2": single_sim("2M4+2M2", (0, 2, 1, 3), GATE_SINGLE_TARGET),
        "M8": single_sim("M8", (0, 0, 0, 0), GATE_SINGLE_TARGET),
    }
    snapshot = {
        "benchmark": "test_engine_package_throughput",
        "seed_cycles_per_second": seed_baseline_cycles_per_second(),
        "perf_gate": {
            "scale": GATE_SCALE,
            "workers": GATE_WORKERS,
            # Machine class of the recording host: the gate only enforces
            # against a baseline recorded on the same class (a different
            # class downgrades the run to record-only).
            "machine": (
                f"{platform.system()}-{platform.machine()}"
                f"-cpu{os.cpu_count()}"
            ),
            "single_sim_commit_target": GATE_SINGLE_TARGET,
            "cycles_per_second": gate_cps,
            "sweep_seconds_best": round(min(gate_times), 3),
            "sweep_seconds_all": [round(t, 3) for t in gate_times],
            "note": (
                "fixed-scale same-machine reference for "
                "benchmarks/perf_gate.py; the CI lane fails on >25% "
                "regression of cycles/sec or sweep wall clock vs the "
                "latest committed BENCH_000N baseline"
            ),
        },
    }

    # --- full-scale PR-over-PR measurements ------------------------------
    if full_windows:
        hdsmt_cps = single_sim("2M4+2M2", (0, 2, 1, 3), 3000)
        m8_cps = single_sim("M8", (0, 0, 0, 0), 3000)
        scale = ExperimentScale(**SWEEP_SCALE)
        screening_times, _ = sweep(scale, SWEEP_WORKERS, screening=True,
                                   repeats=2,
                                   store_dir=tmp_path / "trace-store")
        exact_times, exact_jobs = sweep(scale, SWEEP_WORKERS, screening=False,
                                        repeats=1,
                                        store_dir=tmp_path / "trace-store")
        sweep_best = min(screening_times)
        snapshot["single_sim"] = {
            "scenario": {
                "benchmarks": ["gzip", "twolf", "bzip2", "mcf"],
                "commit_target": 3000,
                "trace_length": 6000,
            },
            "pr4_cycles_per_second": PR4_SINGLE_SIM_CPS,
            "cycles_per_second": {"2M4+2M2": hdsmt_cps, "M8": m8_cps},
        }
        snapshot["reference_sweep"] = {
            "configs": list(SWEEP_CONFIGS),
            "workloads": list(SWEEP_WORKLOADS),
            "scale": SWEEP_SCALE,
            "workers": SWEEP_WORKERS,
            "screening": True,
            "pr4_recorded_seconds": PR4_SWEEP_SECONDS,
            "seconds_best": round(sweep_best, 3),
            "seconds_all": [round(t, 3) for t in screening_times],
        }
        snapshot["exact_sweep"] = {
            "screening": False,
            "pr4_recorded_seconds": PR4_EXACT_SWEEP_SECONDS,
            "seconds": round(exact_times[0], 3),
            "jobs_dispatched": exact_jobs[0],
            "note": (
                "exact mode now bundles the candidate screens as well as "
                "the full-length tail: the whole sweep is a handful of "
                "worker jobs (jobs_dispatched) instead of one per "
                "candidate mapping — see the dispatch_overhead section "
                "for the scaling curve"
            ),
        }
        print(f"\n[engine-package] single-sim {hdsmt_cps:,}/s (hdSMT) "
              f"{m8_cps:,}/s (M8); screening sweep best {sweep_best:.2f} s; "
              f"exact {exact_times[0]:.2f} s in {exact_jobs[0]} jobs "
              f"[saved to {ENGINE_PKG_SNAPSHOT}]")

    # Merge, never clobber: other benches and the manually recorded
    # same-session A/B live in the same snapshot.
    merged = {}
    if ENGINE_PKG_SNAPSHOT.exists():
        try:
            merged = json.loads(ENGINE_PKG_SNAPSHOT.read_text())
        except ValueError:
            merged = {}
    merged.update(snapshot)
    ENGINE_PKG_SNAPSHOT.write_text(json.dumps(merged, indent=2) + "\n")
    print(f"\n[perf-gate ref] sweep best {min(gate_times):.2f} s @scale "
          f"{GATE_SCALE}, single-sim {gate_cps} [saved to "
          f"{ENGINE_PKG_SNAPSHOT}]")
    # Catastrophic-regression tripwires (machine-portable; see the PR 3
    # test above for the rationale).
    seed_cps = merged["seed_cycles_per_second"]
    assert gate_cps["2M4+2M2"] > 0.2 * seed_cps, (gate_cps, seed_cps)
    assert gate_cps["M8"] > 0.2 * seed_cps, (gate_cps, seed_cps)


def _sweep_stage_breakdown() -> dict:
    """Cold per-stage costs for the reference scenario: trace generation,
    warm-up (cold + memoized restore) and the timed run itself."""
    cfg = get_config("2M4+2M2")
    names = ("gzip", "twolf", "bzip2", "mcf")
    length = SWEEP_SCALE["commit_target"]

    clear_trace_cache()
    t0 = time.perf_counter()
    traces = [trace_for(b, length) for b in names]
    t1 = time.perf_counter()
    clear_warm_cache()
    proc = Processor(cfg, traces, (0, 2, 1, 3),
                     commit_target=SWEEP_SCALE["commit_target"])
    proc.warm()
    t2 = time.perf_counter()
    proc.mem.reset_stats()
    proc.branch_unit.reset_stats()
    proc.run()
    t3 = time.perf_counter()
    proc2 = Processor(cfg, traces, (0, 2, 1, 3),
                      commit_target=SWEEP_SCALE["commit_target"])
    proc2.warm()
    t4 = time.perf_counter()
    return {
        "trace_gen_seconds": round(t1 - t0, 4),
        "warm_cold_seconds": round(t2 - t1, 4),
        "warm_restore_seconds": round(t4 - t3, 4),
        "run_seconds": round(t3 - t2, 4),
    }


def test_sweep_throughput(tmp_path, monkeypatch):
    """Whole-sweep wall clock: the headline number of this PR.

    Measures the reference performance sweep (see SWEEP_* above) with 4
    workers in two modes — exact oracle screening without the shared
    trace store (the closest runtime proxy of the PR 1 scheduler) and
    ``--screening`` with the full packed-store machinery — and writes
    ``BENCH_0002.json`` comparing both against the recorded PR 1 wall
    clock. The PR's acceptance bar (speedup_vs_pr1_recorded >= 2) is
    judged from the snapshot, since the recorded PR 1 number is specific
    to the machine it was measured on; the assertion below is a
    machine-portable regression tripwire on the screening-vs-exact ratio
    measured in this same process.
    """
    from repro.experiments.performance import (
        clear_result_cache,
        run_performance_experiment,
    )
    from repro.experiments.scale import ExperimentScale
    from repro.runner import BatchRunner

    # The sweep must actually simulate: no stale result cache, and one
    # session-local trace/warm store shared by the repeats (the packed
    # store is persistent machinery by design).
    monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    store_dir = tmp_path / "trace-store"
    scale = ExperimentScale(**SWEEP_SCALE)

    def measure(screening: bool, repeats: int, trace_store) -> list:
        times = []
        for _ in range(repeats):
            clear_result_cache()
            clear_trace_cache()
            clear_warm_cache()
            runner = BatchRunner(workers=SWEEP_WORKERS, trace_store=trace_store)
            t0 = time.perf_counter()
            run_performance_experiment(
                SWEEP_CONFIGS, SWEEP_WORKLOADS, scale,
                runner=runner, screening=screening,
            )
            times.append(time.perf_counter() - t0)
            runner.close()
        return times

    exact_times = measure(screening=False, repeats=1, trace_store=False)
    screening_times = measure(screening=True, repeats=3,
                              trace_store=store_dir)
    best = min(screening_times)
    stages = _sweep_stage_breakdown()

    snapshot = {
        "benchmark": "test_sweep_throughput",
        "reference_sweep": {
            "configs": list(SWEEP_CONFIGS),
            "workloads": list(SWEEP_WORKLOADS),
            "scale": SWEEP_SCALE,
            "workers": SWEEP_WORKERS,
        },
        "pr1_recorded_seconds": PR1_SWEEP_SECONDS,
        "pr1_recorded_note": (
            "PR 1 state (commit dc04876), best of 2 cold runs with 4 "
            "workers, measured on the same machine at PR 2 time"
        ),
        "exact_mode_seconds": round(exact_times[0], 3),
        "screening_seconds_best": round(best, 3),
        "screening_seconds_all": [round(t, 3) for t in screening_times],
        "speedup_vs_pr1_recorded": round(PR1_SWEEP_SECONDS / best, 3),
        "speedup_vs_exact_now": round(exact_times[0] / best, 3),
        "stages": stages,
    }
    SWEEP_SNAPSHOT.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"\n[sweep throughput] screening best {best:.2f} s vs PR1 "
          f"{PR1_SWEEP_SECONDS:.2f} s -> "
          f"{PR1_SWEEP_SECONDS / best:.2f}x (exact now: "
          f"{exact_times[0]:.2f} s) [saved to {SWEEP_SNAPSHOT}]")
    # Same-machine, same-process guard (measured ~1.8x; generous slack
    # for noisy boxes): screening must clearly beat the exact sweep.
    assert exact_times[0] / best >= 1.3
