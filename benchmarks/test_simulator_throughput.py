"""Micro-benchmarks: simulator and substrate throughput.

Not a paper artifact — these track the cost of the hot paths (the
profiling-first discipline of the HPC guides: measure before and after
touching the simulator loops).
"""

from repro.branch.perceptron import PerceptronPredictor
from repro.core.config import get_config
from repro.core.processor import Processor
from repro.memory.cache import SetAssociativeCache
from repro.trace.stream import trace_for


def test_cache_access_throughput(benchmark):
    c = SetAssociativeCache(64 * 1024, 2, 64, 8, name="bench")
    addrs = [(i * 2654435761) % (1 << 24) for i in range(4096)]

    def run():
        access = c.access
        for a in addrs:
            access(a)

    benchmark(run)


def test_perceptron_throughput(benchmark):
    p = PerceptronPredictor()
    pcs = [(0x40_0000 + 4 * i) for i in range(512)]

    def run():
        for pc in pcs:
            taken = p.predict(0, pc)
            p.update(0, pc, not taken)

    benchmark(run)


def test_trace_generation_throughput(benchmark):
    from repro.trace.benchmarks import get_benchmark
    from repro.trace.synthetic import StaticProgram, TraceGenerator

    prog = StaticProgram(get_benchmark("gcc"), seed=0)

    def run():
        TraceGenerator(prog, seed=1).generate(5_000)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_simulator_cycles_per_second(benchmark):
    """End-to-end simulation speed on a 4-thread hdSMT configuration."""
    cfg = get_config("2M4+2M2")
    traces = [trace_for(b, 6000) for b in ("gzip", "twolf", "bzip2", "mcf")]

    def run():
        proc = Processor(cfg, traces, (0, 2, 1, 3), commit_target=3000)
        proc.warm()
        proc.run()
        return proc.cycle

    cycles = benchmark.pedantic(run, rounds=3, iterations=1)
    assert cycles > 0
