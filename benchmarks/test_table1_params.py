"""E4 — Table 1: simulation parameters."""

from repro.core.config import BaselineParams
from repro.metrics.tables import format_table


def table1_text() -> str:
    p = BaselineParams()
    m = p.memory
    rows = [
        ["Branch Predictor", "perceptron (4K local, 256 perceps)"],
        ["BTB", "256 entries, 4-way associative"],
        ["RAS*", "256 entries"],
        ["ROB Size*", f"{p.rob_entries} entries"],
        ["Rename Registers", f"{p.rename_registers} regs."],
        ["L1 I-Cache", f"{m.l1i_size // 1024}KB, {m.l1i_ways}-way, {m.l1i_banks} banks"],
        ["L1 D-Cache", f"{m.l1d_size // 1024}KB, {m.l1d_ways}-way, {m.l1d_banks} banks"],
        ["L1 lat./misspenalty", f"{m.l1_latency}/{m.l1_miss_penalty} cyc."],
        ["L2 Cache", f"{m.l2_size // 1024}KB, {m.l2_ways}-way, {m.l2_banks} banks"],
        ["L2 latency", f"{m.l2_latency} cyc."],
        ["Main Memory Latency", f"{m.memory_latency} cyc."],
        [
            "I-TLB/D-TLB/TLB missp.",
            f"{m.itlb_entries} ent. / {m.dtlb_entries} ent. / {m.tlb_miss_penalty} cyc.",
        ],
    ]
    return format_table(
        ["Parameter", "Value (* replicated per thread)"],
        rows,
        title="Table 1 — simulation parameters",
    )


def test_table1_params(benchmark, artifact):
    text = benchmark.pedantic(table1_text, rounds=1, iterations=1)
    artifact("table1_params", text)
    for expected in ("64KB", "512KB", "3/22", "250 cyc.", "48 ent. / 128 ent. / 300 cyc."):
        assert expected in text
