"""PR 10 snapshot (``BENCH_0010.json``): cache tiers + work stealing.

Two serving-economics measurements, both against real processes:

* **warm-hit A/B** — the serving stack with the memory/frame tiers on
  (``REPRO_MEM_CACHE_MB``) versus pinned disk-only
  (``REPRO_MEM_CACHE_MB=0``), measured **interleaved in one session**
  (alternating order every round) so frequency scaling and cache
  warm-up cannot favour either arm, at two depths: the *service layer*
  (two real :class:`ReproService` instances, submit-to-landed latency —
  this is where the tiers live, and where the >=5x target is enforced:
  a frame hit returns the rendered response bytes without touching
  json/sha256/disk or the dispatch thread) and *end to end* (two live
  ``repro serve`` daemons over unix sockets, recording what a tenant
  sees including connect/transfer/parse costs the tiers cannot touch).
  Every round asserts the responses byte-identical to the cold
  reference, in both measurements, on both arms.
* **straggler-steal A/B** — a distributed continuation-bundle sweep on
  a two-worker fleet with one injected mid-sweep hang, run with work
  stealing on (the hung bundle's un-started tail is split into
  sub-tasks across the live fleet) and off (``REPRO_STEAL_PARTS=0``:
  the legacy whole-bundle speculative twin).  Both arms must stay
  byte-identical to the fault-free local run with zero failures; the
  snapshot records the wall-clock of each arm.

The snapshot also carries the standard **perf-gate reference** section
(fixed ``GATE_SCALE``, same shape and methodology as BENCH_0009's;
``benchmarks/perf_gate.py`` treats this snapshot as the fresh gate
source).  The gate sweep and single-sims run the local supervised path
with no cache in the loop, so the gate keeps measuring the engine.
Sections written by other benches are preserved — merge, never clobber.
"""

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

from test_simulator_throughput import (
    GATE_SCALE,
    GATE_SINGLE_TARGET,
    GATE_WORKERS,
    SWEEP_CONFIGS,
    SWEEP_SCALE,
    SWEEP_WORKLOADS,
    seed_baseline_cycles_per_second,
)

from repro.core.config import get_config
from repro.core.processor import Processor, clear_warm_cache
from repro.runner import BatchRunner, JobQueue
from repro.runner.cache import sim_result_payload
from repro.runner.continuation import ContinuationJob, ContinuationRun
from repro.service import ReproService, ServiceClient
from repro.trace.stream import clear_trace_cache, trace_for

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = str(_REPO_ROOT / "src")
TIERS_SNAPSHOT = _REPO_ROOT / "BENCH_0010.json"

#: The warm-tier reference request: a multi-tenant-sized sweep (12
#: sims), so the disk arm pays per-job keying + shard read + JSON parse
#: + payload render on every warm hit while the frame arm returns one
#: cached byte string — the socket round trip is the same for both.
_SIM = {
    "config": "M8",
    "benchmarks": ["gzip", "twolf", "bzip2", "mcf"],
    "mapping": [0, 0, 0, 0],
    "commit_target": 2000,
}
REFERENCE_SWEEP = {"sims": [dict(_SIM, seed=s) for s in range(12)]}

#: Interleaved warm rounds (each round measures BOTH daemons, order
#: alternating; best-of across rounds is the reported latency).
WARM_ROUNDS = 30

#: The straggler sweep: continuation bundles on a two-worker fleet.
STEAL_RUNS = tuple(
    ContinuationRun("M8", ("gzip", "twolf"), (0, 0), 400, seed=500 + i)
    for i in range(12)
)
STEAL_BUNDLES = [
    ContinuationJob(runs=STEAL_RUNS[i:i + 2]) for i in range(0, 12, 2)
]
#: One worker-side hang, fired mid-sweep so the speculation deadline has
#: a completion-time distribution to quantile.
STEAL_PLAN = [{"match": "", "op": "hang", "executions": [4],
               "scope": "worker", "hang_seconds": 8.0}]
WORKER_TTL = 0.8


def _canonical_bytes(results):
    flat = [r for bundle in results for r in bundle]
    return json.dumps(
        [sim_result_payload(r) for r in flat], sort_keys=True
    ).encode()


# -- the warm-hit A/B --------------------------------------------------------


def _start_daemon(tmp_path, name, mem_mb):
    sock = str(tmp_path / f"{name}.sock")
    env = dict(os.environ, PYTHONPATH=_SRC, REPRO_MEM_CACHE_MB=str(mem_mb))
    env.pop("REPRO_FAULT_PLAN", None)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", sock,
         "--cache", str(tmp_path / f"{name}-cache"), "--jobs", "2",
         "--quiet"],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    client = ServiceClient(socket_path=sock, timeout=300)
    deadline = time.monotonic() + 60
    while True:
        try:
            client.ping()
            return proc, client
        except (ConnectionError, OSError):
            if time.monotonic() > deadline:
                proc.terminate()
                raise
            time.sleep(0.1)


def _service_layer_ab(tmp_path):
    """Submit-to-landed latency through two real ReproService instances
    sharing one warmed disk cache: frame/memory tiers vs disk-only,
    interleaved, byte-identity asserted every round."""
    import asyncio

    cache_dir = tmp_path / "svc-cache"
    mem_runner = BatchRunner(workers=2, cache_dir=cache_dir)
    disk_runner = BatchRunner(workers=2, cache_dir=cache_dir,
                              mem_cache_mb=0)
    mem_times, disk_times = [], []

    async def main():
        svc_mem = ReproService(mem_runner, cache=mem_runner.cache,
                               frame_cache_mb=64)
        svc_disk = ReproService(disk_runner, cache=disk_runner.cache,
                                frame_cache_mb=0)
        await svc_mem.start()
        await svc_disk.start()

        async def once(svc):
            flight, _ = svc.submit("sweep", REFERENCE_SWEEP)
            await flight.done.wait()
            assert flight.response_bytes is not None, flight.error
            return flight.response_bytes

        try:
            ref = await once(svc_mem)  # cold: executes, renders, frames
            assert await once(svc_disk) == ref  # warm via the shared disk
            assert await once(svc_mem) == ref   # frame now resident
            for round_no in range(WARM_ROUNDS):
                arms = [(svc_mem, mem_times), (svc_disk, disk_times)]
                if round_no % 2:
                    arms.reverse()
                for svc, times in arms:
                    t0 = time.perf_counter()
                    assert await once(svc) == ref  # byte-identical
                    times.append(time.perf_counter() - t0)
            assert svc_mem.stats["frame_served"] == WARM_ROUNDS + 1
            assert svc_disk.stats["frame_served"] == 0
            assert svc_disk.stats["cache_served"] == WARM_ROUNDS + 1
        finally:
            await svc_mem.close()
            await svc_disk.close()

    try:
        asyncio.run(main())
    finally:
        mem_runner.close()
        disk_runner.close()
    return mem_times, disk_times


def test_cache_tiers_and_work_stealing(tmp_path, monkeypatch):
    """The warm-hit A/B (service layer + end to end), the
    straggler-steal A/B, and the perf-gate reference, all recorded into
    ``BENCH_0010.json``."""
    # --- warm-hit A/B, service layer ------------------------------------
    svc_mem_times, svc_disk_times = _service_layer_ab(tmp_path)
    svc_speedup = min(svc_disk_times) / min(svc_mem_times)

    # --- warm-hit A/B, end to end over unix sockets ---------------------
    mem_proc, mem_client = _start_daemon(tmp_path, "mem", 64)
    disk_proc, disk_client = _start_daemon(tmp_path, "disk", 0)
    try:
        mem_client.submit("sweep", REFERENCE_SWEEP)
        reference_text = mem_client.last_payload_text
        disk_client.submit("sweep", REFERENCE_SWEEP)
        assert disk_client.last_payload_text == reference_text

        mem_times, disk_times = [], []
        for round_no in range(WARM_ROUNDS):
            arms = [(mem_client, mem_times), (disk_client, disk_times)]
            if round_no % 2:
                arms.reverse()
            for client, times in arms:
                t0 = time.perf_counter()
                client.submit("sweep", REFERENCE_SWEEP)
                times.append(time.perf_counter() - t0)
                # Byte-identical every round, both arms.
                assert client.last_payload_text == reference_text

        mem_stats = mem_client.status()
        disk_stats = disk_client.status()
        assert mem_stats["executed"] == 1 and disk_stats["executed"] == 1
        assert mem_stats["frame_served"] == WARM_ROUNDS
        assert disk_stats["frame_served"] == 0
        assert disk_stats["cache_served"] == WARM_ROUNDS
    finally:
        for proc in (mem_proc, disk_proc):
            proc.terminate()
        for proc in (mem_proc, disk_proc):
            proc.wait(timeout=60)

    warm_speedup = min(disk_times) / min(mem_times)

    # --- straggler-steal A/B --------------------------------------------
    with BatchRunner(workers=1, trace_store=False) as local:
        steal_reference = local.run(STEAL_BUNDLES)
    ref_bytes = _canonical_bytes(steal_reference)

    monkeypatch.setenv("REPRO_DIST_GRACE", "30")
    monkeypatch.setenv("REPRO_LEASE_TTL", "2.0")
    monkeypatch.setenv("REPRO_SPEC_QUANTILE", "0.25")
    monkeypatch.setenv("REPRO_SPEC_FACTOR", "1.0")

    def straggler_arm(name, steal_parts):
        monkeypatch.setenv("REPRO_STEAL_PARTS", steal_parts)
        if not steal_parts:
            monkeypatch.delenv("REPRO_STEAL_PARTS")
        qdir = tmp_path / f"{name}-q"
        state = tmp_path / f"{name}-fault-state"
        env = dict(
            os.environ, PYTHONPATH=_SRC,
            REPRO_FAULT_PLAN=json.dumps(STEAL_PLAN),
            REPRO_FAULT_STATE=str(state),
        )
        with BatchRunner(workers=2, queue_dir=qdir,
                         cache_dir=tmp_path / f"{name}-cache") as runner:
            q = JobQueue(qdir)
            procs = [
                subprocess.Popen(
                    [sys.executable, "-m", "repro", "worker",
                     "--queue", str(qdir), "--worker-id", f"{name}{i}",
                     "--lease-ttl", str(WORKER_TTL)],
                    env=env,
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                )
                for i in range(2)
            ]
            try:
                deadline = time.monotonic() + 30
                while len(q.live_workers(ttl=5.0)) < 2:
                    assert time.monotonic() < deadline, "fleet never up"
                    time.sleep(0.05)
                t0 = time.perf_counter()
                results = runner.run(STEAL_BUNDLES)
                wall = time.perf_counter() - t0
                report = runner.report
            finally:
                q.request_stop()
                for p in procs:
                    try:
                        p.wait(timeout=20)
                    except subprocess.TimeoutExpired:
                        p.kill()
                        p.wait(timeout=10)
        assert _canonical_bytes(results) == ref_bytes
        assert report.failures == 0
        assert report.local_fallbacks == 0
        return wall, report

    steal_wall, steal_report = straggler_arm("steal", "")
    twin_wall, twin_report = straggler_arm("twin", "0")
    assert steal_report.steals >= 1
    assert twin_report.steals == 0
    assert twin_report.speculations >= 1

    # --- perf-gate reference (always, fixed scale) -----------------------
    from repro.experiments.performance import (
        clear_result_cache,
        run_performance_experiment,
    )
    from repro.experiments.scale import ExperimentScale

    def single_sim(config_name, mapping, commit_target, rounds=5):
        cfg = get_config(config_name)
        traces = [trace_for(b, 6000)
                  for b in ("gzip", "twolf", "bzip2", "mcf")]
        best = None
        cycles = 0
        for _ in range(rounds):
            p = Processor(cfg, traces, mapping, commit_target=commit_target)
            p.warm()
            t0 = time.perf_counter()
            p.run()
            dt = time.perf_counter() - t0
            cycles = p.cycle
            if best is None or dt < best:
                best = dt
        return round(cycles / best)

    gate_scale = ExperimentScale(**SWEEP_SCALE).scaled(GATE_SCALE)
    gate_times = []
    for _ in range(2):
        clear_result_cache()
        clear_trace_cache()
        clear_warm_cache()
        runner = BatchRunner(workers=GATE_WORKERS,
                             trace_store=tmp_path / "gate-store")
        t0 = time.perf_counter()
        run_performance_experiment(SWEEP_CONFIGS, SWEEP_WORKLOADS,
                                   gate_scale, runner=runner,
                                   screening=True)
        gate_times.append(time.perf_counter() - t0)
        assert not runner.report.eventful  # a healthy gate run needs no rescue
        runner.close()
    gate_cps = {
        "2M4+2M2": single_sim("2M4+2M2", (0, 2, 1, 3), GATE_SINGLE_TARGET),
        "M8": single_sim("M8", (0, 0, 0, 0), GATE_SINGLE_TARGET),
    }

    snapshot = {
        "benchmark": "test_cache_tiers",
        "seed_cycles_per_second": seed_baseline_cycles_per_second(),
        "perf_gate": {
            "scale": GATE_SCALE,
            "workers": GATE_WORKERS,
            # Machine class of the recording host: the gate only enforces
            # against a baseline recorded on the same class (a different
            # class downgrades the run to record-only).
            "machine": (
                f"{platform.system()}-{platform.machine()}"
                f"-cpu{os.cpu_count()}"
            ),
            "single_sim_commit_target": GATE_SINGLE_TARGET,
            "cycles_per_second": gate_cps,
            "sweep_seconds_best": round(min(gate_times), 3),
            "sweep_seconds_all": [round(t, 3) for t in gate_times],
            "note": (
                "fixed-scale same-machine reference for "
                "benchmarks/perf_gate.py; the CI lane fails on >25% "
                "regression of cycles/sec or sweep wall clock vs the "
                "latest committed BENCH_000N baseline — the gate sweep "
                "runs the local supervised path with no result cache, "
                "so it keeps measuring the engine, not the new tiers"
            ),
        },
        "cache_tiers": {
            "reference_sweep": {
                "sims": len(REFERENCE_SWEEP["sims"]),
                "commit_target": _SIM["commit_target"],
                "rounds": WARM_ROUNDS,
            },
            "service_layer": {
                "memory_tier": {
                    "warm_seconds_best": round(min(svc_mem_times), 6),
                    "warm_seconds_mean": round(
                        sum(svc_mem_times) / len(svc_mem_times), 6
                    ),
                },
                "disk_only": {
                    "warm_seconds_best": round(min(svc_disk_times), 6),
                    "warm_seconds_mean": round(
                        sum(svc_disk_times) / len(svc_disk_times), 6
                    ),
                },
                "warm_speedup_mem_over_disk_best": round(svc_speedup, 1),
                "note": (
                    "submit-to-landed latency through two in-process "
                    "ReproService instances sharing one warmed disk "
                    "cache, interleaved (alternating order every round), "
                    "responses asserted byte-identical to the cold "
                    "reference on every round; the frame arm returns "
                    "the rendered response bytes, the disk arm re-keys "
                    "every job through the sharded ResultCache and "
                    "re-renders the response — this is where the >=5x "
                    "tier target is enforced"
                ),
            },
            "end_to_end_daemon": {
                "memory_tier": {
                    "warm_seconds_best": round(min(mem_times), 5),
                    "warm_seconds_mean": round(
                        sum(mem_times) / len(mem_times), 5
                    ),
                    "frame_served": WARM_ROUNDS,
                },
                "disk_only": {
                    "warm_seconds_best": round(min(disk_times), 5),
                    "warm_seconds_mean": round(
                        sum(disk_times) / len(disk_times), 5
                    ),
                    "cache_served": WARM_ROUNDS,
                },
                "warm_speedup_mem_over_disk_best": round(warm_speedup, 1),
                "note": (
                    "interleaved same-session A/B against two live "
                    "daemons over unix sockets (alternating order every "
                    "round), responses asserted byte-identical to the "
                    "cold reference on every round; what a tenant sees "
                    "end to end — the socket connect, response transfer "
                    "and client-side parse are identical for both arms "
                    "and floor the ratio, so the tier speedup itself is "
                    "enforced at the service layer above"
                ),
            },
        },
        "work_stealing": {
            "bundles": len(STEAL_BUNDLES),
            "runs_per_bundle": 2,
            "commit_target": 400,
            "hang_seconds": STEAL_PLAN[0]["hang_seconds"],
            "steal_on": {
                "wall_seconds": round(steal_wall, 3),
                "steals": steal_report.steals,
                "speculations": steal_report.speculations,
            },
            "steal_off": {
                "wall_seconds": round(twin_wall, 3),
                "steals": twin_report.steals,
                "speculations": twin_report.speculations,
            },
            "note": (
                "two-worker fleet, one injected mid-sweep 8s hang; "
                "steal_on splits the hung bundle's un-started tail "
                "across the live fleet, steal_off (REPRO_STEAL_PARTS=0) "
                "dispatches the legacy whole-bundle speculative twin; "
                "both arms asserted byte-identical to the fault-free "
                "local run with zero failures"
            ),
        },
    }

    # Merge, never clobber: other benches may extend this snapshot later.
    merged = {}
    if TIERS_SNAPSHOT.exists():
        try:
            merged = json.loads(TIERS_SNAPSHOT.read_text())
        except ValueError:
            merged = {}
    merged.update(snapshot)
    TIERS_SNAPSHOT.write_text(json.dumps(merged, indent=2) + "\n")

    print(f"\n[cache-tiers] service layer warm best: "
          f"mem {min(svc_mem_times) * 1e6:.0f} us vs "
          f"disk {min(svc_disk_times) * 1e6:.0f} us ({svc_speedup:.1f}x) "
          f"over {WARM_ROUNDS} interleaved rounds")
    print(f"[cache-tiers] end-to-end warm best: "
          f"mem {min(mem_times) * 1000:.2f} ms "
          f"vs disk {min(disk_times) * 1000:.2f} ms "
          f"({warm_speedup:.1f}x) over {WARM_ROUNDS} interleaved rounds "
          f"[saved to {TIERS_SNAPSHOT}]")
    print(f"[work-stealing] straggler sweep: steal on {steal_wall:.2f} s "
          f"({steal_report.steals} steal(s)) vs off {twin_wall:.2f} s "
          f"({twin_report.speculations} twin(s))")
    print(f"[perf-gate ref] sweep best {min(gate_times):.2f} s @scale "
          f"{GATE_SCALE}, single-sim {gate_cps}")

    # Tripwires: the memory tier must beat disk-only by the PR's target
    # at the layer the tiers live in, end to end must still come out
    # ahead of the symmetric transport floor, and the gate-scale engine
    # floors still apply.
    assert svc_speedup >= 5.0, (min(svc_mem_times), min(svc_disk_times))
    assert warm_speedup >= 1.2, (min(mem_times), min(disk_times))
    seed_cps = merged["seed_cycles_per_second"]
    assert gate_cps["2M4+2M2"] > 0.2 * seed_cps, (gate_cps, seed_cps)
    assert gate_cps["M8"] > 0.2 * seed_cps, (gate_cps, seed_cps)
