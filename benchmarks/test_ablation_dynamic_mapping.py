"""A5 — dynamic vs static mapping under a program phase change.

The paper's §7 future work, measured: a thread that turns memory-bound
mid-run is demoted from the dedicated wide pipeline by the online
heuristic; the static mapping keeps serving the stale profile.
"""

from repro.core.config import get_config
from repro.core.dynamic import run_dynamic
from repro.core.processor import Processor
from repro.metrics.tables import format_table
from repro.trace.composite import composite_trace
from repro.trace.stream import trace_for

TARGET = 8_000


def run_pair():
    config = get_config("2M4+2M2")
    length = 3 * TARGET
    traces = [
        composite_trace("gzip", "mcf", length, switch_at=2_500),
        trace_for("bzip2", length),
        trace_for("gap", length),
    ]
    static_map = (0, 1, 1)

    proc = Processor(config, traces, static_map, TARGET)
    proc.warm()
    proc.mem.reset_stats()
    proc.run()
    static_ipc = proc.aggregate_ipc()

    dyn = run_dynamic(
        config,
        ["changing", "steady1", "steady2"],
        traces=traces,
        initial_mapping=static_map,
        commit_target=TARGET,
        epoch_cycles=800,
        trace_length=length,
    )
    return static_ipc, dyn


def test_ablation_dynamic_mapping(benchmark, artifact):
    static_ipc, dyn = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    text = format_table(
        ["policy", "IPC", "migrations"],
        [
            ["static (stale profile)", f"{static_ipc:.3f}", 0],
            ["dynamic (epoch heuristic)", f"{dyn.result.ipc:.3f}", dyn.migrations],
        ],
        title="A5 — dynamic remapping under a phase change (gzip->mcf thread)",
    )
    artifact("ablation_dynamic_mapping", text)
    assert dyn.migrations >= 1, "the phase change must trigger a remap"
