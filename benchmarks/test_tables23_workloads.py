"""E5 — Tables 2 and 3: workload definitions."""

from repro.metrics.tables import format_table
from repro.workloads.definitions import WORKLOADS


def tables23_text() -> str:
    rows = [
        [w.name, ", ".join(w.benchmarks), w.workload_class[0] if w.workload_class != "MIX" else "X"]
        for w in WORKLOADS.values()
    ]
    return format_table(
        ["Wld", "Benchmarks", "T"],
        rows,
        title="Tables 2 & 3 — workloads (I=ILP, M=MEM, X=MIX)",
    )


def test_tables23_workloads(benchmark, artifact):
    text = benchmark.pedantic(tables23_text, rounds=1, iterations=1)
    artifact("tables23_workloads", text)
    assert "2W4" in text and "mcf, twolf" in text
    assert "6W4" in text
    assert text.count("\n") == 22 + 2  # 22 workloads + header + rule
