"""PR 9 snapshot (``BENCH_0009.json``): specialized cycle-loop codegen.

The codegen engine's hard guarantee is behavioural — bit-identical
statistics vs the generic engine, pinned by the lockstep and
forced-deopt suites under ``tests/``.  The number that matters here is
what the specialization *buys*: cycles/second of the generated fused
loop against the generic scheduling loop, measured **interleaved in one
session** (generic round, codegen round, alternating order every round)
so frequency scaling, cache warm-up and allocator state cannot favour
either arm.  Per config the snapshot records both arms' best-of rates,
the speedup, and the deopt counters (M8's FLUSH policy deopts on the
first flush by design — the specialization targets the hdSMT
steady-state configs, whose runs stay fully specialized).

The snapshot also carries the standard **perf-gate reference** section
(fixed ``GATE_SCALE``, same shape and methodology as BENCH_0008's;
``benchmarks/perf_gate.py`` treats this snapshot as the fresh gate
source).  The gate sweep and single-sims run the default — generic —
engine, so the gate keeps measuring what production runs use.
Sections written by other benches are preserved — merge, never clobber.
"""

import json
import os
import platform
import time
from dataclasses import replace
from pathlib import Path

from test_simulator_throughput import (
    GATE_SCALE,
    GATE_SINGLE_TARGET,
    GATE_WORKERS,
    SWEEP_CONFIGS,
    SWEEP_SCALE,
    SWEEP_WORKLOADS,
    seed_baseline_cycles_per_second,
)

from repro.core.config import get_config
from repro.core.engine.options import EngineOptions
from repro.core.processor import Processor, clear_warm_cache
from repro.runner import BatchRunner
from repro.trace.stream import clear_trace_cache, trace_for

_REPO_ROOT = Path(__file__).resolve().parent.parent
CODEGEN_SNAPSHOT = _REPO_ROOT / "BENCH_0009.json"

#: A/B rounds per config (each round runs BOTH arms; best-of across
#: rounds is the reported rate, as everywhere else in the harness).
AB_ROUNDS = 7

#: Same window as the perf-gate single-sims: big enough that best-of
#: rates are stable to a few percent, small enough for the bench lane.
AB_TARGET = GATE_SINGLE_TARGET

#: The measured configurations: the two hdSMT heterogeneous configs
#: (L1MCOUNT policy — no flushes, so runs stay fully specialized) and
#: the monolithic baseline (FLUSH policy — deopts to generic on the
#: first flush, recorded to show the guard cost is paid once).
AB_CONFIGS = (
    ("2M4+2M2", ("gzip", "twolf", "bzip2", "mcf"), (0, 2, 1, 3)),
    ("1M6+2M4+2M2", ("gzip", "gcc", "crafty", "eon", "gap", "bzip2"),
     (0, 0, 1, 2, 3, 4)),
    ("M8", ("gzip", "twolf", "bzip2", "mcf"), (0, 0, 0, 0)),
)


def _final_state(proc):
    return (
        proc.cycle,
        tuple(proc.committed),
        tuple(proc.stat_mispredicts),
        tuple(proc.stat_flushes),
        tuple(proc.stat_fetched),
        proc.aggregate_ipc(),
    )


def _run_once(cfg, traces, mapping):
    proc = Processor(cfg, traces, mapping, commit_target=AB_TARGET)
    proc.warm()
    t0 = time.perf_counter()
    proc.run()
    return proc, time.perf_counter() - t0


def _ab_config(name, benches, mapping):
    """Interleaved A/B of one config; returns its snapshot record."""
    generic_cfg = replace(
        get_config(name), engine_options=EngineOptions(codegen=False)
    )
    codegen_cfg = replace(
        get_config(name), engine_options=EngineOptions(codegen=True)
    )
    traces = [trace_for(b, 6000) for b in benches]
    best = {"generic": None, "codegen": None}
    state = {}
    deopts = {}
    for rnd in range(AB_ROUNDS):
        arms = [("generic", generic_cfg), ("codegen", codegen_cfg)]
        if rnd % 2:  # alternate order: neither arm always runs cold
            arms.reverse()
        for arm, cfg in arms:
            proc, dt = _run_once(cfg, traces, mapping)
            if best[arm] is None or dt < best[arm]:
                best[arm] = dt
            state[arm] = _final_state(proc)
            if arm == "codegen":
                deopts = dict(proc.codegen_deopts or {})
        # The two arms must agree on every statistic, every round.
        assert state["generic"] == state["codegen"], name
    cycles = state["generic"][0]
    generic_cps = round(cycles / best["generic"])
    codegen_cps = round(cycles / best["codegen"])
    return {
        "generic_cycles_per_second": generic_cps,
        "codegen_cycles_per_second": codegen_cps,
        "speedup": round(codegen_cps / generic_cps, 3),
        "deopts": deopts,
        "bit_identical": True,
    }


def test_codegen_speedup(tmp_path):
    # --- interleaved A/B -------------------------------------------------
    ab = {
        name: _ab_config(name, benches, mapping)
        for name, benches, mapping in AB_CONFIGS
    }

    # --- perf-gate reference (always, fixed scale, generic engine) -------
    from repro.experiments.performance import (
        clear_result_cache,
        run_performance_experiment,
    )
    from repro.experiments.scale import ExperimentScale

    def single_sim(config_name, mapping, commit_target, rounds=5):
        cfg = get_config(config_name)
        traces = [trace_for(b, 6000)
                  for b in ("gzip", "twolf", "bzip2", "mcf")]
        best = None
        cycles = 0
        for _ in range(rounds):
            p = Processor(cfg, traces, mapping, commit_target=commit_target)
            p.warm()
            t0 = time.perf_counter()
            p.run()
            dt = time.perf_counter() - t0
            cycles = p.cycle
            if best is None or dt < best:
                best = dt
        return round(cycles / best)

    gate_scale = ExperimentScale(**SWEEP_SCALE).scaled(GATE_SCALE)
    gate_times = []
    for _ in range(2):
        clear_result_cache()
        clear_trace_cache()
        clear_warm_cache()
        runner = BatchRunner(workers=GATE_WORKERS,
                             trace_store=tmp_path / "gate-store")
        t0 = time.perf_counter()
        run_performance_experiment(SWEEP_CONFIGS, SWEEP_WORKLOADS,
                                   gate_scale, runner=runner,
                                   screening=True)
        gate_times.append(time.perf_counter() - t0)
        assert not runner.report.eventful  # a healthy gate run needs no rescue
        runner.close()
    gate_cps = {
        "2M4+2M2": single_sim("2M4+2M2", (0, 2, 1, 3), GATE_SINGLE_TARGET),
        "M8": single_sim("M8", (0, 0, 0, 0), GATE_SINGLE_TARGET),
    }

    snapshot = {
        "benchmark": "test_codegen_speedup",
        "seed_cycles_per_second": seed_baseline_cycles_per_second(),
        "codegen_ab": {
            "commit_target": AB_TARGET,
            "rounds": AB_ROUNDS,
            "configs": ab,
            "note": (
                "same-session interleaved A/B (arm order alternates "
                "every round, best-of rates): generic scheduling loop "
                "vs the generated fused cycle loop, identical traces "
                "and statistics asserted every round; deopts name the "
                "guard that aborted the specialized loop (M8's FLUSH "
                "policy deopts on the first flush by design)"
            ),
        },
        "perf_gate": {
            "scale": GATE_SCALE,
            "workers": GATE_WORKERS,
            # Machine class of the recording host: the gate only enforces
            # against a baseline recorded on the same class (a different
            # class downgrades the run to record-only).
            "machine": (
                f"{platform.system()}-{platform.machine()}"
                f"-cpu{os.cpu_count()}"
            ),
            "single_sim_commit_target": GATE_SINGLE_TARGET,
            "cycles_per_second": gate_cps,
            "sweep_seconds_best": round(min(gate_times), 3),
            "sweep_seconds_all": [round(t, 3) for t in gate_times],
            "note": (
                "fixed-scale same-machine reference for "
                "benchmarks/perf_gate.py; the CI lane fails on >25% "
                "regression of cycles/sec or sweep wall clock vs the "
                "latest committed BENCH_000N baseline — sweep and "
                "single-sims run the default (generic) engine, so the "
                "gate keeps measuring what production runs use"
            ),
        },
    }

    # Merge, never clobber: other benches may extend this snapshot later.
    merged = {}
    if CODEGEN_SNAPSHOT.exists():
        try:
            merged = json.loads(CODEGEN_SNAPSHOT.read_text())
        except ValueError:
            merged = {}
    merged.update(snapshot)
    CODEGEN_SNAPSHOT.write_text(json.dumps(merged, indent=2) + "\n")

    for name, rec in ab.items():
        print(f"\n[codegen A/B] {name}: generic "
              f"{rec['generic_cycles_per_second']:,} c/s, codegen "
              f"{rec['codegen_cycles_per_second']:,} c/s "
              f"(x{rec['speedup']}, deopts {rec['deopts'] or 'none'})")
    print(f"\n[perf-gate ref] sweep best {min(gate_times):.2f} s @scale "
          f"{GATE_SCALE}, single-sim {gate_cps} [saved to "
          f"{CODEGEN_SNAPSHOT}]")

    # Catastrophic-regression tripwires (machine-portable): the hdSMT
    # configs must run fully specialized, and specialization must never
    # cost throughput beyond round-to-round noise on any config.
    for name, _, _ in AB_CONFIGS[:2]:
        assert ab[name]["deopts"] == {}, (name, ab[name])
    for name, rec in ab.items():
        assert rec["speedup"] > 0.8, (name, rec)
    seed_cps = seed_baseline_cycles_per_second()
    assert gate_cps["2M4+2M2"] > 0.2 * seed_cps, (gate_cps, seed_cps)
    assert gate_cps["M8"] > 0.2 * seed_cps, (gate_cps, seed_cps)
