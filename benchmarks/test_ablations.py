"""A1–A4 — ablation benches (studies beyond the paper).

A1 fetch policy, A2 register latency, A3 fetch-buffer size, A4 mapping
policy. Each regenerates a small table quantifying one design choice the
paper asserts without measurement.
"""

from repro.experiments.ablations import (
    ablation_fetch_buffer,
    ablation_fetch_policy,
    ablation_mapping_policy,
    ablation_register_latency,
    ablation_report,
)
from repro.experiments.scale import ExperimentScale

SCALE = ExperimentScale(commit_target=4000, screen_target=1000, max_mappings=16)


def test_ablation_fetch_policy(benchmark, artifact):
    res = benchmark.pedantic(
        ablation_fetch_policy, kwargs={"scale": SCALE}, rounds=1, iterations=1
    )
    artifact("ablation_fetch_policy", ablation_report(res, "fetch_policy"))
    # The paper's choice for multipipeline configs must not lose to a
    # blind rotation.
    assert res["l1mcount"].ipc >= res["roundrobin"].ipc * 0.9


def test_ablation_register_latency(benchmark, artifact):
    res = benchmark.pedantic(
        ablation_register_latency, kwargs={"scale": SCALE}, rounds=1, iterations=1
    )
    artifact("ablation_reg_latency", ablation_report(res, "reg_latency"))
    assert set(res) == {1, 2, 3}


def test_ablation_fetch_buffer(benchmark, artifact):
    """Buffer sizing is a genuine tradeoff, not monotone: deeper buffers
    decouple the pipelines from the 2-seat fetch engine, but also let a
    thread fetch further past an unresolved mispredicted branch, raising
    wrong-path waste. The assertion only pins the band: no size may
    collapse throughput."""
    res = benchmark.pedantic(
        ablation_fetch_buffer, kwargs={"scale": SCALE}, rounds=1, iterations=1
    )
    artifact("ablation_fetch_buffer", ablation_report(res, "fetch_buffer"))
    ipcs = [r.ipc for r in res.values()]
    assert min(ipcs) >= 0.8 * max(ipcs)


def test_ablation_mapping_policy(benchmark, artifact):
    res = benchmark.pedantic(
        ablation_mapping_policy, kwargs={"scale": SCALE}, rounds=1, iterations=1
    )
    artifact("ablation_mapping_policy", ablation_report(res, "mapping_policy"))
    assert res["oracle-best"].ipc >= res["heuristic"].ipc
    assert res["oracle-best"].ipc >= res["oracle-worst"].ipc
