"""E1 — Fig. 2(a): pipeline-model resource table."""

from repro.core.models import M2, M4, M6, M8
from repro.metrics.tables import format_table


def fig2a_text() -> str:
    rows = []
    for label, get in (
        ("Hardware Contexts", lambda m: m.contexts),
        ("Max. Instr./cycle", lambda m: m.width),
        ("Max. Threads/cycle", lambda m: m.threads_per_cycle),
        ("Queues (IQ/FQ/LQ)", lambda m: m.iq_entries),
        ("Integer Func. Units", lambda m: m.int_units),
        ("FP Func. Units", lambda m: m.fp_units),
        ("LD/ST Units", lambda m: m.ldst_units),
    ):
        rows.append([label] + [get(m) for m in (M8, M6, M4, M2)])
    return format_table(
        ["Resource", "M8", "M6", "M4", "M2"],
        rows,
        title="Fig. 2(a) — pipeline model resources",
    )


def test_fig2a_resources(benchmark, artifact):
    text = benchmark.pedantic(fig2a_text, rounds=1, iterations=1)
    artifact("fig2a_models", text)
    # The table must carry the paper's exact values.
    assert "8" in text and "64" in text and "16" in text
