"""E8 — §5 headline numbers: ours vs the paper's."""

from repro.experiments.summary import headline_summary, summary_report
from repro.metrics.tables import format_table


def test_headline_summary(benchmark, artifact, sweep):
    def render():
        s = headline_summary(sweep)
        per_cfg = format_table(
            ["config", "hmean IPC (HEUR)", "hmean IPC/mm2 (HEUR)"],
            [
                [c, f"{s.ipc_by_config[c]:.3f}", f"{s.ppa_by_config[c]:.5f}"]
                for c in s.ipc_by_config
            ],
            title="Overall means across the common workload set",
        )
        return summary_report(s) + "\n\n" + per_cfg

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    artifact("headline_summary", text)

    s = headline_summary(sweep)
    # Sign-level reproduction of every §5 claim.
    assert s.ppa_gain_vs_monolithic > 0.05
    assert s.ppa_gain_vs_homogeneous > 0.0
    assert s.ipc_gain_monolithic_vs_hdsmt > -0.05
    for cfg, acc in s.heuristic_accuracy.items():
        assert acc > 0.7, f"{cfg} heuristic accuracy {acc:.2f}"
