"""PR 6 snapshot (``BENCH_0006.json``): the supervised dispatch layer.

The PR's hard guarantees are behavioural — bit-identical results through
retry/respawn/degradation, pinned by ``tests/runner/test_faults.py`` —
so the number that matters here is the *cost of supervision when nothing
goes wrong*: the per-job-future scheduler (submit + wait + deadline
bookkeeping) versus the old single ``pool.map`` call it replaced, on an
identical no-fault batch (``fault_tolerance.overhead``, interleaved A/B,
best-of). The acceptance bar is overhead within noise.

The snapshot also records a **chaos acceptance run** — the ISSUE's
injected worker death + hang + corrupted cache entry sweep — with its
RunReport, plus the standard **perf-gate reference** section (fixed
``GATE_SCALE``, same shape as BENCH_0005's; ``benchmarks/perf_gate.py``
treats this snapshot as the fresh gate source). Sections written by
other benches are preserved — merge, never clobber.
"""

import json
import os
import platform
import time
from pathlib import Path

from test_simulator_throughput import (
    GATE_SCALE,
    GATE_SINGLE_TARGET,
    GATE_WORKERS,
    SWEEP_CONFIGS,
    SWEEP_SCALE,
    SWEEP_WORKLOADS,
    seed_baseline_cycles_per_second,
)

from repro.core.config import get_config
from repro.core.processor import Processor, clear_warm_cache
from repro.runner import BatchRunner, RetryPolicy, SimJob
from repro.trace.stream import clear_trace_cache, trace_for

_REPO_ROOT = Path(__file__).resolve().parent.parent
FAULT_SNAPSHOT = _REPO_ROOT / "BENCH_0006.json"

#: The A/B batch: a dozen light jobs across the standard configurations
#: (seeds vary the trace draw so no in-process memo collapses the work).
AB_JOBS = tuple(
    SimJob(cfg, ("gzip", "twolf", "bzip2", "mcf"), mapping, 2000, seed=s)
    for s, (cfg, mapping) in enumerate(
        [("M8", (0, 0, 0, 0)), ("2M4+2M2", (0, 2, 1, 3))] * 6
    )
)
AB_WORKERS = 2
AB_REPEATS = 3

#: The chaos scenario jobs (distinct seeds make per-job fault matching
#: deterministic; see tests/runner/test_faults.py for the same pattern).
CHAOS_JOBS = tuple(
    SimJob("M8", ("gzip", "twolf"), (0, 0), 800, seed=900 + i)
    for i in range(4)
)


def test_fault_tolerance_overhead(tmp_path, monkeypatch):
    """No-fault supervision overhead (A/B vs the legacy ``pool.map``
    path), the chaos acceptance run, and the perf-gate reference."""
    from repro.experiments.performance import (
        clear_result_cache,
        run_performance_experiment,
    )
    from repro.experiments.scale import ExperimentScale
    from repro.runner.faults import corrupt_cache_entry
    from repro.runner.resilience import RunReport

    monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)

    # --- no-fault overhead: supervised vs legacy pool.map (interleaved) --
    def run_supervised():
        with BatchRunner(workers=AB_WORKERS, trace_store=False) as runner:
            t0 = time.perf_counter()
            results = runner.run(AB_JOBS)
            return time.perf_counter() - t0, results

    def run_pool_map():
        with BatchRunner(workers=AB_WORKERS, trace_store=False) as runner:
            t0 = time.perf_counter()
            results = runner._run_pool_map(AB_JOBS)
            return time.perf_counter() - t0, results

    supervised_times, legacy_times = [], []
    for _ in range(AB_REPEATS):
        t_sup, sup_results = run_supervised()
        t_leg, leg_results = run_pool_map()
        assert sup_results == leg_results  # bit-identical, always
        supervised_times.append(t_sup)
        legacy_times.append(t_leg)
    sup_best, leg_best = min(supervised_times), min(legacy_times)
    overhead_pct = round(100.0 * (sup_best / leg_best - 1.0), 1)

    # --- chaos acceptance run (death + hang + corrupt cache entry) -------
    with BatchRunner(workers=1, trace_store=False) as ref_runner:
        reference = ref_runner.run(CHAOS_JOBS)
    cache_dir = tmp_path / "chaos-cache"
    from repro.runner import ResultCache

    cache = ResultCache(cache_dir)
    cache.put(CHAOS_JOBS[0], reference[0])
    corrupt_cache_entry(cache, CHAOS_JOBS[0], mode="truncate")
    monkeypatch.setenv("REPRO_FAULT_STATE", str(tmp_path / "fault-state"))
    monkeypatch.setenv(
        "REPRO_FAULT_PLAN",
        json.dumps([
            {"match": "seed=901", "op": "die", "executions": [1]},
            {"match": "seed=902", "op": "hang", "executions": [1, 2],
             "hang_seconds": 60.0},
        ]),
    )
    chaos_policy = RetryPolicy(
        max_attempts=3, backoff_base=0.05, backoff_max=0.2, timeout=3.0
    )
    with BatchRunner(workers=2, trace_store=False, policy=chaos_policy,
                     cache_dir=cache_dir) as chaos_runner:
        chaos_results = chaos_runner.run(CHAOS_JOBS)
        chaos_report: RunReport = chaos_runner.report
    monkeypatch.delenv("REPRO_FAULT_PLAN")
    assert chaos_results == reference
    assert chaos_report.pool_respawns >= 1
    assert chaos_report.timeouts >= 1
    assert chaos_report.cache_fallbacks >= 1

    # --- perf-gate reference (always, fixed scale) -----------------------
    def single_sim(config_name, mapping, commit_target, rounds=5):
        cfg = get_config(config_name)
        traces = [trace_for(b, 6000) for b in ("gzip", "twolf", "bzip2", "mcf")]
        best = None
        cycles = 0
        for _ in range(rounds):
            proc = Processor(cfg, traces, mapping, commit_target=commit_target)
            proc.warm()
            t0 = time.perf_counter()
            proc.run()
            dt = time.perf_counter() - t0
            cycles = proc.cycle
            if best is None or dt < best:
                best = dt
        return round(cycles / best)

    gate_scale = ExperimentScale(**SWEEP_SCALE).scaled(GATE_SCALE)
    gate_times = []
    for _ in range(2):
        clear_result_cache()
        clear_trace_cache()
        clear_warm_cache()
        runner = BatchRunner(workers=GATE_WORKERS,
                             trace_store=tmp_path / "gate-store")
        t0 = time.perf_counter()
        run_performance_experiment(SWEEP_CONFIGS, SWEEP_WORKLOADS, gate_scale,
                                   runner=runner, screening=True)
        gate_times.append(time.perf_counter() - t0)
        assert not runner.report.eventful  # a healthy gate run needs no rescue
        runner.close()
    gate_cps = {
        "2M4+2M2": single_sim("2M4+2M2", (0, 2, 1, 3), GATE_SINGLE_TARGET),
        "M8": single_sim("M8", (0, 0, 0, 0), GATE_SINGLE_TARGET),
    }

    snapshot = {
        "benchmark": "test_fault_tolerance_overhead",
        "seed_cycles_per_second": seed_baseline_cycles_per_second(),
        "perf_gate": {
            "scale": GATE_SCALE,
            "workers": GATE_WORKERS,
            # Machine class of the recording host: the gate only enforces
            # against a baseline recorded on the same class (a different
            # class downgrades the run to record-only).
            "machine": (
                f"{platform.system()}-{platform.machine()}"
                f"-cpu{os.cpu_count()}"
            ),
            "single_sim_commit_target": GATE_SINGLE_TARGET,
            "cycles_per_second": gate_cps,
            "sweep_seconds_best": round(min(gate_times), 3),
            "sweep_seconds_all": [round(t, 3) for t in gate_times],
            "note": (
                "fixed-scale same-machine reference for "
                "benchmarks/perf_gate.py; the CI lane fails on >25% "
                "regression of cycles/sec or sweep wall clock vs the "
                "latest committed BENCH_000N baseline — now measured "
                "through the supervised dispatch path"
            ),
        },
        "fault_tolerance": {
            "overhead": {
                "jobs": len(AB_JOBS),
                "workers": AB_WORKERS,
                "commit_target": 2000,
                "supervised_seconds_best": round(sup_best, 3),
                "supervised_seconds_all": [
                    round(t, 3) for t in supervised_times
                ],
                "pool_map_seconds_best": round(leg_best, 3),
                "pool_map_seconds_all": [round(t, 3) for t in legacy_times],
                "overhead_pct_best": overhead_pct,
                "note": (
                    "per-job-future supervision vs the legacy single "
                    "pool.map dispatch on an identical no-fault batch "
                    "(interleaved A/B, fresh runner + pool per "
                    "measurement); results asserted bit-identical on "
                    "every repeat"
                ),
            },
            "chaos_acceptance": {
                "scenario": (
                    "4 jobs, 2 workers: one injected worker death "
                    "(os._exit), one hang past the 3s job timeout, one "
                    "pre-corrupted result-cache entry"
                ),
                "bit_identical_to_fault_free": True,
                "report": chaos_report.as_dict(),
            },
        },
    }

    # Merge, never clobber: other benches may extend this snapshot later.
    merged = {}
    if FAULT_SNAPSHOT.exists():
        try:
            merged = json.loads(FAULT_SNAPSHOT.read_text())
        except ValueError:
            merged = {}
    merged.update(snapshot)
    FAULT_SNAPSHOT.write_text(json.dumps(merged, indent=2) + "\n")
    print(f"\n[fault-tolerance] supervised {sup_best:.2f} s vs pool.map "
          f"{leg_best:.2f} s ({overhead_pct:+.1f}%); chaos run "
          f"bit-identical with {chaos_report.describe()} "
          f"[saved to {FAULT_SNAPSHOT}]")
    print(f"\n[perf-gate ref] sweep best {min(gate_times):.2f} s @scale "
          f"{GATE_SCALE}, single-sim {gate_cps} [saved to {FAULT_SNAPSHOT}]")
    # Catastrophic-regression tripwires (machine-portable): supervision
    # must never cost multiples of the dispatch it replaced, and the
    # gate-scale engine floors from the throughput module still apply.
    assert sup_best < 2.0 * leg_best, (sup_best, leg_best)
    seed_cps = merged["seed_cycles_per_second"]
    assert gate_cps["2M4+2M2"] > 0.2 * seed_cps, (gate_cps, seed_cps)
    assert gate_cps["M8"] > 0.2 * seed_cps, (gate_cps, seed_cps)
