"""PR 7 snapshot (``BENCH_0007.json``): distributed sweep execution.

The PR's hard guarantees are behavioural — results byte-identical to
local execution through worker death, stale leases, stragglers and
whole-fleet loss, pinned by ``tests/runner/test_distributed_chaos.py``
— so the number that matters here is the *cost of distribution when
nothing goes wrong*: the lease-queue round trip (enqueue, claim,
heartbeat, publish, harvest over the filesystem) against a real
2-process ``repro worker`` fleet versus the same batch through the
local supervised pool (``distributed.overhead``, best-of).

The snapshot also records a **chaos acceptance run** — the ISSUE's
combined worker-death + stale-lease + straggler-hang sweep with its
RunReport (>=1 lease reclamation, >=1 speculative re-dispatch, 0 failed
jobs) — plus the standard **perf-gate reference** section (fixed
``GATE_SCALE``, same shape and methodology as BENCH_0006's;
``benchmarks/perf_gate.py`` treats this snapshot as the fresh gate
source). Sections written by other benches are preserved — merge,
never clobber.
"""

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

from test_simulator_throughput import (
    GATE_SCALE,
    GATE_SINGLE_TARGET,
    GATE_WORKERS,
    SWEEP_CONFIGS,
    SWEEP_SCALE,
    SWEEP_WORKLOADS,
    seed_baseline_cycles_per_second,
)

from repro.core.config import get_config
from repro.core.processor import Processor, clear_warm_cache
from repro.runner import BatchRunner, JobQueue, SimJob
from repro.trace.stream import clear_trace_cache, trace_for

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = str(_REPO_ROOT / "src")
DIST_SNAPSHOT = _REPO_ROOT / "BENCH_0007.json"

#: The A/B batch: a dozen light jobs across the standard configurations
#: (seeds vary the trace draw so no in-process memo collapses the work).
AB_JOBS = tuple(
    SimJob(cfg, ("gzip", "twolf", "bzip2", "mcf"), mapping, 2000, seed=s)
    for s, (cfg, mapping) in enumerate(
        [("M8", (0, 0, 0, 0)), ("2M4+2M2", (0, 2, 1, 3))] * 6
    )
)
AB_FLEET = 2
AB_REPEATS = 3

#: The chaos scenario jobs (distinct seeds; same shape as the
#: ``make chaos-remote`` acceptance sweep).
CHAOS_JOBS = tuple(
    SimJob("M8", ("gzip", "twolf"), (0, 0), 400, seed=900 + i)
    for i in range(12)
)

#: Worker-side lease lifetime for the spawned fleets (renewed at a third
#: of this by each worker's heartbeat thread).
WORKER_TTL = 0.8


def _spawn_workers(queue_dir, count, plan=None, state=None):
    env = dict(os.environ, PYTHONPATH=_SRC)
    env.pop("REPRO_FAULT_PLAN", None)
    if plan is not None:
        env["REPRO_FAULT_PLAN"] = json.dumps(plan)
        env["REPRO_FAULT_STATE"] = str(state)
    return [
        subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--queue", str(queue_dir),
             "--worker-id", f"bw{i}",
             "--lease-ttl", str(WORKER_TTL)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        for i in range(count)
    ]


def _wait_for_fleet(queue_dir, count, timeout=60.0):
    q = JobQueue(queue_dir)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if len(q.live_workers(ttl=5.0)) >= count:
            return
        time.sleep(0.05)
    raise AssertionError(f"fleet of {count} never registered")


def _stop_fleet(queue_dir, procs, timeout=30.0):
    JobQueue(queue_dir).request_stop()
    deadline = time.monotonic() + timeout
    for p in procs:
        remaining = max(0.5, deadline - time.monotonic())
        try:
            p.wait(timeout=remaining)
        except subprocess.TimeoutExpired:
            p.kill()
            p.wait(timeout=10)


def test_distributed_overhead(tmp_path, monkeypatch):
    """No-fault distribution overhead (2-worker fleet vs the local
    supervised pool on an identical batch), the chaos acceptance run,
    and the perf-gate reference."""
    from repro.experiments.performance import (
        clear_result_cache,
        run_performance_experiment,
    )
    from repro.experiments.scale import ExperimentScale
    from repro.runner.resilience import RunReport

    monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    monkeypatch.delenv("REPRO_DIST_QUEUE", raising=False)
    monkeypatch.setenv("REPRO_DIST_GRACE", "30")
    monkeypatch.setenv("REPRO_LEASE_TTL", "2.0")

    # --- local leg: the supervised pool (the path distribution wraps) ----
    local_times = []
    reference = None
    for _ in range(AB_REPEATS):
        with BatchRunner(workers=AB_FLEET) as runner:
            t0 = time.perf_counter()
            results = runner.run(AB_JOBS)
            local_times.append(time.perf_counter() - t0)
        if reference is None:
            reference = results
        assert results == reference  # bit-identical, always

    # --- distributed leg: real worker processes over the lease queue -----
    qdir = tmp_path / "ab-queue"
    dist_times = []
    with BatchRunner(workers=AB_FLEET, queue_dir=qdir) as runner:
        procs = _spawn_workers(qdir, AB_FLEET)
        try:
            _wait_for_fleet(qdir, AB_FLEET)
            for _ in range(AB_REPEATS):
                t0 = time.perf_counter()
                results = runner.run(AB_JOBS)
                dist_times.append(time.perf_counter() - t0)
                assert results == reference  # bit-identical, always
            ab_report: RunReport = runner.report
        finally:
            _stop_fleet(qdir, procs)
    assert ab_report.enqueued == AB_REPEATS * len(AB_JOBS)
    assert ab_report.failures == 0 and ab_report.local_fallbacks == 0
    local_best, dist_best = min(local_times), min(dist_times)
    overhead_pct = round(100.0 * (dist_best / local_best - 1.0), 1)

    # --- chaos acceptance run (death + stale lease + straggler hang) -----
    with BatchRunner(workers=1, trace_store=False) as ref_runner:
        chaos_reference = ref_runner.run(CHAOS_JOBS)
    monkeypatch.setenv("REPRO_SPEC_QUANTILE", "0.25")
    monkeypatch.setenv("REPRO_SPEC_FACTOR", "1.0")
    plan = [
        {"match": "", "op": "die", "executions": [1],
         "scope": "worker", "exit_code": 17},
        {"match": "", "op": "stale-lease", "executions": [2],
         "scope": "worker", "hang_seconds": 2.0},
        {"match": "", "op": "hang", "executions": [6],
         "scope": "worker", "hang_seconds": 5.0},
    ]
    chaos_qdir = tmp_path / "chaos-queue"
    with BatchRunner(workers=2, queue_dir=chaos_qdir) as chaos_runner:
        procs = _spawn_workers(chaos_qdir, 2, plan=plan,
                               state=tmp_path / "fault-state")
        try:
            _wait_for_fleet(chaos_qdir, 2)
            chaos_results = chaos_runner.run(list(CHAOS_JOBS))
            chaos_report: RunReport = chaos_runner.report
        finally:
            _stop_fleet(chaos_qdir, procs)
    assert chaos_results == chaos_reference
    assert chaos_report.lease_reclaims >= 1
    assert chaos_report.speculations >= 1
    assert chaos_report.failures == 0

    # --- perf-gate reference (always, fixed scale) -----------------------
    def single_sim(config_name, mapping, commit_target, rounds=5):
        cfg = get_config(config_name)
        traces = [trace_for(b, 6000) for b in ("gzip", "twolf", "bzip2", "mcf")]
        best = None
        cycles = 0
        for _ in range(rounds):
            proc = Processor(cfg, traces, mapping, commit_target=commit_target)
            proc.warm()
            t0 = time.perf_counter()
            proc.run()
            dt = time.perf_counter() - t0
            cycles = proc.cycle
            if best is None or dt < best:
                best = dt
        return round(cycles / best)

    gate_scale = ExperimentScale(**SWEEP_SCALE).scaled(GATE_SCALE)
    gate_times = []
    for _ in range(2):
        clear_result_cache()
        clear_trace_cache()
        clear_warm_cache()
        runner = BatchRunner(workers=GATE_WORKERS,
                             trace_store=tmp_path / "gate-store")
        t0 = time.perf_counter()
        run_performance_experiment(SWEEP_CONFIGS, SWEEP_WORKLOADS, gate_scale,
                                   runner=runner, screening=True)
        gate_times.append(time.perf_counter() - t0)
        assert not runner.report.eventful  # a healthy gate run needs no rescue
        runner.close()
    gate_cps = {
        "2M4+2M2": single_sim("2M4+2M2", (0, 2, 1, 3), GATE_SINGLE_TARGET),
        "M8": single_sim("M8", (0, 0, 0, 0), GATE_SINGLE_TARGET),
    }

    snapshot = {
        "benchmark": "test_distributed_overhead",
        "seed_cycles_per_second": seed_baseline_cycles_per_second(),
        "perf_gate": {
            "scale": GATE_SCALE,
            "workers": GATE_WORKERS,
            # Machine class of the recording host: the gate only enforces
            # against a baseline recorded on the same class (a different
            # class downgrades the run to record-only).
            "machine": (
                f"{platform.system()}-{platform.machine()}"
                f"-cpu{os.cpu_count()}"
            ),
            "single_sim_commit_target": GATE_SINGLE_TARGET,
            "cycles_per_second": gate_cps,
            "sweep_seconds_best": round(min(gate_times), 3),
            "sweep_seconds_all": [round(t, 3) for t in gate_times],
            "note": (
                "fixed-scale same-machine reference for "
                "benchmarks/perf_gate.py; the CI lane fails on >25% "
                "regression of cycles/sec or sweep wall clock vs the "
                "latest committed BENCH_000N baseline — the sweep runs "
                "the local supervised path (no REPRO_DIST_QUEUE), so "
                "the gate keeps measuring the engine, not the fleet"
            ),
        },
        "distributed": {
            "overhead": {
                "jobs": len(AB_JOBS),
                "fleet": AB_FLEET,
                "commit_target": 2000,
                "repeats": AB_REPEATS,
                "distributed_seconds_best": round(dist_best, 3),
                "distributed_seconds_all": [round(t, 3) for t in dist_times],
                "local_seconds_best": round(local_best, 3),
                "local_seconds_all": [round(t, 3) for t in local_times],
                "overhead_pct_best": overhead_pct,
                "note": (
                    "lease-queue round trip (enqueue, O_EXCL claim, "
                    "heartbeat renewal, first-wins publish, poll-harvest "
                    "over the filesystem) against a real 2-process "
                    "`repro worker` fleet vs the same no-fault batch "
                    "through the local supervised pool; results asserted "
                    "bit-identical on every repeat"
                ),
            },
            "chaos_acceptance": {
                "scenario": (
                    "12 jobs, 2-worker fleet: one injected worker death "
                    "(os._exit 17), one stale lease (frozen renewal + "
                    "2s stall past the 0.8s ttl), one 5s straggler hang "
                    "past the speculation deadline"
                ),
                "bit_identical_to_fault_free": True,
                "report": chaos_report.as_dict(),
            },
        },
    }

    # Merge, never clobber: other benches may extend this snapshot later.
    merged = {}
    if DIST_SNAPSHOT.exists():
        try:
            merged = json.loads(DIST_SNAPSHOT.read_text())
        except ValueError:
            merged = {}
    merged.update(snapshot)
    DIST_SNAPSHOT.write_text(json.dumps(merged, indent=2) + "\n")
    print(f"\n[distributed] fleet {dist_best:.2f} s vs local "
          f"{local_best:.2f} s ({overhead_pct:+.1f}%); chaos run "
          f"bit-identical with {chaos_report.describe()} "
          f"[saved to {DIST_SNAPSHOT}]")
    print(f"\n[perf-gate ref] sweep best {min(gate_times):.2f} s @scale "
          f"{GATE_SCALE}, single-sim {gate_cps} [saved to {DIST_SNAPSHOT}]")
    # Catastrophic-regression tripwires (machine-portable): filesystem
    # coordination must never cost multiples of the pool it wraps (a
    # small absolute allowance covers the fixed per-batch queue setup on
    # slow CI disks), and the gate-scale engine floors still apply.
    assert dist_best < 2.0 * local_best + 5.0, (dist_best, local_best)
    seed_cps = merged["seed_cycles_per_second"]
    assert gate_cps["2M4+2M2"] > 0.2 * seed_cps, (gate_cps, seed_cps)
    assert gate_cps["M8"] > 0.2 * seed_cps, (gate_cps, seed_cps)
